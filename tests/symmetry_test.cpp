// Node symmetry & dominance analysis (analysis/symmetry.hpp): verified
// equivalence classes on hand-built instances, the splits that placement
// rules and pinning force, the strict-dominance order under degraded
// capacities, and the end-to-end guarantee the tentpole rests on — planning
// with canonical-representative pruning attached yields the same verdict and
// the same optimal cost as the unpruned search.
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"
#include "analysis/symmetry.hpp"
#include "core/planner.hpp"
#include "model/compile.hpp"
#include "model/textio.hpp"

#ifndef SEKITEI_TEST_DATA_DIR
#error "SEKITEI_TEST_DATA_DIR must point at examples/data (set by CMake)"
#endif

namespace sekitei::analysis {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string data_file(const char* name) {
  return std::string(SEKITEI_TEST_DATA_DIR) + "/" + name;
}

/// Producer/consumer pair: Server emits 100 units of M, Client needs 50.
constexpr const char* kDomain = R"(
interface M {
  property ibw degradable;
  cross {
    M.ibw' := min(M.ibw, link.lbw);
    link.lbw -= min(M.ibw, link.lbw);
  }
  cost 1;
}
component Server {
  implements M;
  effects { M.ibw := 100; }
  cost 1;
}
component Client {
  requires M;
  conditions { M.ibw >= 50; }
  cost 1;
}
)";

/// Hub h plus three link-for-link identical leaves; the goal pins h, the
/// leaves are interchangeable Server sites.
constexpr const char* kStarProblem = R"(
network {
  node h { cpu 30; }
  node l1 { cpu 30; }
  node l2 { cpu 30; }
  node l3 { cpu 30; }
  link h l1 lan { lbw 150; delay 1; }
  link h l2 lan { lbw 150; delay 1; }
  link h l3 lan { lbw 150; delay 1; }
}
problem {
  goal Client at h;
}
scenario {
  levels M.ibw { 50 }
}
)";

/// A compiled instance that keeps its LoadedProblem alive (the compiled
/// problem borrows the network/domain/problem it was built from).
struct Inst {
  std::shared_ptr<const model::LoadedProblem> lp;
  model::CompiledProblem cp;
};

Inst compile_text(const char* domain, const std::string& problem) {
  auto lp = model::load_problem(domain, problem);
  model::CompiledProblem cp = model::compile(lp->problem, lp->scenario);
  return {std::move(lp), std::move(cp)};
}

/// The multi-member classes of an analysis, as sorted member-index vectors.
std::vector<std::vector<std::uint32_t>> multi_classes(const SymmetryAnalysis& sa) {
  std::vector<std::vector<std::uint32_t>> out;
  for (const auto& members : sa.class_members) {
    if (members.size() >= 2) out.push_back(members);
  }
  return out;
}

TEST(Symmetry, IdenticalStarLeavesFormOneClass) {
  const auto inst = compile_text(kDomain, kStarProblem);
  const model::CompiledProblem& cp = inst.cp;
  const SymmetryAnalysis sa = analyze_symmetry(cp);
  EXPECT_EQ(sa.symmetric_classes, 1u);
  const auto classes = multi_classes(sa);
  ASSERT_EQ(classes.size(), 1u);
  const NodeId l1 = cp.net->find_node("l1");
  const NodeId l2 = cp.net->find_node("l2");
  const NodeId l3 = cp.net->find_node("l3");
  EXPECT_EQ(classes[0],
            (std::vector<std::uint32_t>{l1.index(), l2.index(), l3.index()}));
  // The goal node is pinned: always a singleton, never dominated/unusable.
  const NodeId h = cp.net->find_node("h");
  EXPECT_TRUE(sa.pinned[h.index()]);
  EXPECT_TRUE(sa.dominated.empty());
  EXPECT_TRUE(sa.unusable.empty());
}

TEST(Symmetry, DiamondClassesAreAllSingletons) {
  // The repair experiments' diamond is deliberately asymmetric (one short
  // route, one two-WAN-hop backup): no two nodes are interchangeable.
  const auto lp = model::load_problem(slurp(data_file("media.sk")),
                                      slurp(data_file("diamond.sk")));
  const auto cp = model::compile(lp->problem, lp->scenario);
  const SymmetryAnalysis sa = analyze_symmetry(cp);
  EXPECT_EQ(sa.symmetric_classes, 0u);
  EXPECT_TRUE(multi_classes(sa).empty());
}

TEST(Symmetry, PreplacementPinsAndSplitsAClass) {
  // Pre-placing the Server on l1 pins it: the class shrinks to {l2, l3}.
  constexpr const char* kProblem = R"(
network {
  node h { cpu 30; }
  node l1 { cpu 30; }
  node l2 { cpu 30; }
  node l3 { cpu 30; }
  link h l1 lan { lbw 150; delay 1; }
  link h l2 lan { lbw 150; delay 1; }
  link h l3 lan { lbw 150; delay 1; }
}
problem {
  preplaced Server at l1;
  forbid Server;
  goal Client at h;
}
scenario {
  levels M.ibw { 50 }
}
)";
  const auto inst = compile_text(kDomain, kProblem);
  const model::CompiledProblem& cp = inst.cp;
  const SymmetryAnalysis sa = analyze_symmetry(cp);
  const NodeId l1 = cp.net->find_node("l1");
  EXPECT_TRUE(sa.pinned[l1.index()]);
  EXPECT_EQ(sa.symmetric_classes, 1u);
  const auto classes = multi_classes(sa);
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0], (std::vector<std::uint32_t>{
                            cp.net->find_node("l2").index(),
                            cp.net->find_node("l3").index()}));
}

TEST(Symmetry, PlacementRestrictionSplitsAClass) {
  // Restricting the Server to l2 changes l2's placeability seed: the class
  // splits into {l1, l3} (still mutual twins) plus the singleton l2.
  constexpr const char* kProblem = R"(
network {
  node h { cpu 30; }
  node l1 { cpu 30; }
  node l2 { cpu 30; }
  node l3 { cpu 30; }
  link h l1 lan { lbw 150; delay 1; }
  link h l2 lan { lbw 150; delay 1; }
  link h l3 lan { lbw 150; delay 1; }
}
problem {
  restrict Server to l2;
  goal Client at h;
}
scenario {
  levels M.ibw { 50 }
}
)";
  const auto inst = compile_text(kDomain, kProblem);
  const model::CompiledProblem& cp = inst.cp;
  const SymmetryAnalysis sa = analyze_symmetry(cp);
  EXPECT_EQ(sa.symmetric_classes, 1u);
  const auto classes = multi_classes(sa);
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0], (std::vector<std::uint32_t>{
                            cp.net->find_node("l1").index(),
                            cp.net->find_node("l3").index()}));
}

TEST(Symmetry, DegradedCapacityMakesANodeStrictlyDominated) {
  // l3 is l1 with its cpu degraded: same links, same rules, strictly less
  // capacity — dominated by the smallest-index twin, reported, not pruned.
  constexpr const char* kProblem = R"(
network {
  node h { cpu 30; }
  node l1 { cpu 30; }
  node l2 { cpu 30; }
  node l3 { cpu 10; }
  link h l1 lan { lbw 150; delay 1; }
  link h l2 lan { lbw 150; delay 1; }
  link h l3 lan { lbw 150; delay 1; }
}
problem {
  goal Client at h;
}
scenario {
  levels M.ibw { 50 }
}
)";
  const auto inst = compile_text(kDomain, kProblem);
  const model::CompiledProblem& cp = inst.cp;
  const SymmetryAnalysis sa = analyze_symmetry(cp);
  const NodeId l1 = cp.net->find_node("l1");
  const NodeId l3 = cp.net->find_node("l3");
  ASSERT_EQ(sa.dominated.size(), 1u);
  EXPECT_EQ(sa.dominated[0].node, l3.index());
  EXPECT_EQ(sa.dominated[0].by, l1.index());
  // The degraded twin leaves the class: only {l1, l2} remain interchangeable.
  const auto classes = multi_classes(sa);
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0], (std::vector<std::uint32_t>{
                            l1.index(), cp.net->find_node("l2").index()}));
}

TEST(Symmetry, AnalyzerEmitsSymmetryAndDominanceFindings) {
  constexpr const char* kProblem = R"(
network {
  node h { cpu 30; }
  node l1 { cpu 30; }
  node l2 { cpu 30; }
  node l3 { cpu 10; }
  link h l1 lan { lbw 150; delay 1; }
  link h l2 lan { lbw 150; delay 1; }
  link h l3 lan { lbw 150; delay 1; }
}
problem {
  goal Client at h;
}
scenario {
  levels M.ibw { 50 }
}
)";
  const auto inst = compile_text(kDomain, kProblem);
  const model::CompiledProblem& cp = inst.cp;
  const AnalysisReport report = analyze(cp);
  bool saw_dominated = false, saw_symmetric = false;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == Code::DominatedNode) {
      saw_dominated = true;
      EXPECT_NE(d.subject.find("l3"), std::string::npos) << d.subject;
    }
    if (d.code == Code::SymmetricNodeClass) {
      saw_symmetric = true;
      EXPECT_NE(d.subject.find("l1"), std::string::npos) << d.subject;
      EXPECT_NE(d.subject.find("l2"), std::string::npos) << d.subject;
    }
  }
  EXPECT_TRUE(saw_dominated);
  EXPECT_TRUE(saw_symmetric);

  // The stage toggle silences both.
  AnalysisOptions off;
  off.symmetry = false;
  for (const Diagnostic& d : analyze(cp, off).diagnostics) {
    EXPECT_NE(d.code, Code::DominatedNode);
    EXPECT_NE(d.code, Code::SymmetricNodeClass);
  }
}

TEST(Symmetry, PrunedSearchMatchesUnprunedOnSymmetricStar) {
  // The guarantee the fuzzer's symmetry oracle re-checks on random
  // instances, pinned here on the hand-built star: attaching the partition
  // changes neither the verdict nor the optimal cost, and actually prunes.
  const auto base = compile_text(kDomain, kStarProblem);
  const core::PlanResult unpruned = core::Sekitei(base.cp).plan();
  ASSERT_TRUE(unpruned.ok()) << unpruned.failure;
  EXPECT_EQ(unpruned.stats.pruned_placements, 0u);

  auto attached = compile_text(kDomain, kStarProblem);
  attach_symmetry(attached.cp);
  ASSERT_EQ(attached.cp.symmetric_class_count, 1u);
  const core::PlanResult pruned = core::Sekitei(attached.cp).plan();
  ASSERT_TRUE(pruned.ok()) << pruned.failure;
  EXPECT_DOUBLE_EQ(pruned.plan->cost_lb, unpruned.plan->cost_lb);
  EXPECT_GT(pruned.stats.pruned_placements, 0u);
  EXPECT_LE(pruned.stats.rg_expansions, unpruned.stats.rg_expansions);

  // The knob restores the legacy search even with the partition attached.
  core::PlannerOptions off;
  off.symmetry_pruning = false;
  const core::PlanResult legacy = core::Sekitei(attached.cp, off).plan();
  ASSERT_TRUE(legacy.ok()) << legacy.failure;
  EXPECT_EQ(legacy.stats.pruned_placements, 0u);
  EXPECT_DOUBLE_EQ(legacy.plan->cost_lb, unpruned.plan->cost_lb);
}

TEST(Symmetry, PrunedPlanIsByteIdenticalOnAsymmetricDiamond) {
  // All-singleton partitions make pruning a provable no-op: the golden
  // diamond plan must come back byte-for-byte identical with it attached.
  const auto lp = model::load_problem(slurp(data_file("media.sk")),
                                      slurp(data_file("diamond.sk")));
  const auto base = model::compile(lp->problem, lp->scenario);
  const core::PlanResult unpruned = core::Sekitei(base).plan();
  ASSERT_TRUE(unpruned.ok()) << unpruned.failure;

  auto attached = model::compile(lp->problem, lp->scenario);
  attach_symmetry(attached);
  EXPECT_EQ(attached.symmetric_class_count, 0u);
  const core::PlanResult pruned = core::Sekitei(attached).plan();
  ASSERT_TRUE(pruned.ok()) << pruned.failure;
  EXPECT_EQ(pruned.stats.pruned_placements, 0u);
  EXPECT_EQ(pruned.plan->str(attached), unpruned.plan->str(base));
  EXPECT_DOUBLE_EQ(pruned.plan->cost_lb, unpruned.plan->cost_lb);
}

}  // namespace
}  // namespace sekitei::analysis
