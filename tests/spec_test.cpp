// Tests for the specification DSL, level sets, validation, and automatic
// degradability tagging (Section 3.1's syntactic analysis).
#include <gtest/gtest.h>

#include "domains/media.hpp"
#include "spec/levels.hpp"
#include "spec/spec.hpp"
#include "support/error.hpp"

namespace sekitei::spec {
namespace {

TEST(LevelSet, TrivialHasOneInterval) {
  LevelSet ls;
  EXPECT_TRUE(ls.trivial());
  EXPECT_EQ(ls.count(), 1u);
  EXPECT_DOUBLE_EQ(ls.interval(0).lo, 0.0);
  EXPECT_EQ(ls.interval(0).hi, kInf);
}

TEST(LevelSet, PaperScenarioDIntervals) {
  // Table 1 row D: [0,30) [30,70) [70,90) [90,100) [100,inf).
  LevelSet ls({30, 70, 90, 100});
  ASSERT_EQ(ls.count(), 5u);
  EXPECT_DOUBLE_EQ(ls.interval(0).lo, 0);
  EXPECT_DOUBLE_EQ(ls.interval(0).hi, 30);
  EXPECT_TRUE(ls.interval(0).hi_open);
  EXPECT_DOUBLE_EQ(ls.interval(3).lo, 90);
  EXPECT_DOUBLE_EQ(ls.interval(3).hi, 100);
  EXPECT_TRUE(ls.interval(3).hi_open);
  EXPECT_EQ(ls.interval(4).hi, kInf);
  EXPECT_FALSE(ls.interval(4).hi_open);
  EXPECT_FALSE(ls.interval(3).contains(100.0));
  EXPECT_TRUE(ls.interval(3).contains(99.9999999));
}

TEST(LevelSet, LevelOfRespectsCutpoints) {
  LevelSet ls({30, 70, 90, 100});
  EXPECT_EQ(ls.level_of(0), 0u);
  EXPECT_EQ(ls.level_of(29.9), 0u);
  EXPECT_EQ(ls.level_of(30), 1u);  // cutpoints open the next level
  EXPECT_EQ(ls.level_of(99.999), 3u);
  EXPECT_EQ(ls.level_of(100), 4u);
  EXPECT_EQ(ls.level_of(1e9), 4u);
}

TEST(LevelSet, ScaledProportionalLevels) {
  // Table 1 caption: T/I/Z levels proportional to M's.
  LevelSet m({90, 100});
  LevelSet i = m.scaled(0.3);
  EXPECT_DOUBLE_EQ(i.cutpoints()[0], 27);
  EXPECT_DOUBLE_EQ(i.cutpoints()[1], 30);
}

TEST(LevelSet, RejectsBadCutpoints) {
  EXPECT_THROW(LevelSet({-1}), Error);
  EXPECT_THROW(LevelSet({10, 10}), Error);
  EXPECT_THROW(LevelSet({10, 5}), Error);
}

TEST(LevelMatches, HalfOpenSemantics) {
  LevelSet ls({90, 100});
  const Interval lvl0 = ls.interval(0);  // [0, 90)
  const Interval lvl1 = ls.interval(1);  // [90, 100)
  // A computed range starting exactly at 90 belongs to level 1 only.
  EXPECT_FALSE(level_matches(lvl0, Interval{90, 95}));
  EXPECT_TRUE(level_matches(lvl1, Interval{90, 95}));
  // A reservation just below a level's supremum still matches that level.
  EXPECT_TRUE(level_matches(lvl0, Interval::point(89.9999999)));
  // A computed range whose open supremum is the level floor cannot reach it.
  EXPECT_FALSE(level_matches(lvl1, Interval{0, 90, /*hi_open=*/true}));
  EXPECT_TRUE(level_matches(lvl1, Interval{0, 90, /*hi_open=*/false}));
  // Ranges reaching into the level from below match.
  EXPECT_TRUE(level_matches(lvl1, Interval{0, 92}));
  // Ranges that cannot reach the level's floor do not.
  EXPECT_FALSE(level_matches(lvl1, Interval{0, 70}));
  // strict_floor (output-level assignment): touching the floor exactly is
  // not enough — Fig. 7's pruning over the 70-unit link.
  EXPECT_FALSE(level_matches(Interval{70, 90, true}, Interval{0, 70}, true));
  EXPECT_TRUE(level_matches(Interval{70, 90, true}, Interval{0, 71}, true));
}

TEST(Parser, MediaDomainRoundTrip) {
  DomainSpec dom = domains::media::make_domain();
  EXPECT_EQ(dom.interface_count(), 4u);   // M T I Z
  EXPECT_EQ(dom.component_count(), 7u);   // Server Client TClient Sp Zip Unzip Mr
  const ComponentSpec* merger = dom.find_component("Merger");
  ASSERT_NE(merger, nullptr);
  EXPECT_EQ(merger->inputs.size(), 2u);
  EXPECT_EQ(merger->outputs.size(), 1u);
  EXPECT_EQ(merger->conditions.size(), 2u);
  EXPECT_EQ(merger->effects.size(), 2u);
  ASSERT_TRUE(merger->cost != nullptr);
}

TEST(Parser, InterfacePropertiesAndTags) {
  DomainSpec dom = domains::media::make_domain();
  const InterfaceSpec* m = dom.find_interface("M");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->tag_of("ibw"), LevelTag::Degradable);
  EXPECT_EQ(m->cross_effects.size(), 2u);
  ASSERT_TRUE(m->cross_cost != nullptr);
}

TEST(Parser, BakedInLevels) {
  DomainSpec dom = parse_domain(R"(
    interface X {
      property v;
      levels v { 10, 20 }
    }
  )");
  const InterfaceSpec* x = dom.find_interface("X");
  ASSERT_NE(x, nullptr);
  ASSERT_TRUE(x->levels.count("v"));
  EXPECT_EQ(x->levels.at("v").count(), 3u);
}

TEST(Parser, ParamDefaultsAndOverrides) {
  const std::string text = "param k = 5;\ninterface X { property v; cost k * X.v; }";
  DomainSpec d1 = parse_domain(text);
  EXPECT_NE(d1.find_interface("X")->cross_cost->str().find("5"), std::string::npos);
  DomainSpec d2 = parse_domain(text, {{"k", 9.0}});
  EXPECT_NE(d2.find_interface("X")->cross_cost->str().find("9"), std::string::npos);
}

TEST(Validation, UnknownInterfaceInRequires) {
  EXPECT_THROW(parse_domain("component C { requires Nope; }"), Error);
}

TEST(Validation, EffectTargetMustBeOutputOrNode) {
  EXPECT_THROW(parse_domain(R"(
    interface A { property v; }
    interface B { property v; }
    component C {
      requires A;
      implements B;
      effects { A.v := 1; }
    }
  )"),
               Error);
}

TEST(Validation, NonMonotoneFormulaRejected) {
  EXPECT_THROW(parse_domain(R"(
    interface A { property v; }
    component C {
      requires A;
      conditions { node.cpu >= A.v * (A.v - 2); }
    }
  )"),
               Error);
}

TEST(Validation, CrossMayOnlyTouchOwnInterfaceAndLink) {
  EXPECT_THROW(parse_domain(R"(
    interface A { property v; cross { A.v' := A.v; node.cpu -= 1; } }
  )"),
               Error);
}

TEST(Validation, UnknownPropertyInFormula) {
  EXPECT_THROW(parse_domain(R"(
    interface A { property v; }
    component C { requires A; conditions { A.nope >= 1; } }
  )"),
               Error);
}

TEST(Validation, DuplicateSpecsRejected) {
  EXPECT_THROW(parse_domain("interface A { property v; } interface A { property v; }"),
               Error);
  EXPECT_THROW(parse_domain("component C { } component C { }"), Error);
}

TEST(AutoTag, BandwidthLikePropertyBecomesDegradable) {
  DomainSpec dom = parse_domain(R"(
    interface S { property bw; }
    component Sink { requires S; conditions { S.bw >= 10; } }
  )");
  dom.auto_tag_properties();
  EXPECT_EQ(dom.find_interface("S")->tag_of("bw"), LevelTag::Degradable);
}

TEST(AutoTag, LatencyLikePropertyBecomesUpgradable) {
  DomainSpec dom = parse_domain(R"(
    interface S { property lat; }
    component Sink { requires S; conditions { S.lat <= 100; } }
  )");
  dom.auto_tag_properties();
  EXPECT_EQ(dom.find_interface("S")->tag_of("lat"), LevelTag::Upgradable);
}

TEST(AutoTag, ConflictingUsageStaysUntagged) {
  DomainSpec dom = parse_domain(R"(
    interface S { property v; }
    component A { requires S; conditions { S.v >= 10; } }
    component B { requires S; conditions { S.v <= 20; } }
  )");
  dom.auto_tag_properties();
  EXPECT_EQ(dom.find_interface("S")->tag_of("v"), LevelTag::None);
}

TEST(AutoTag, ExplicitTagWins) {
  DomainSpec dom = parse_domain(R"(
    interface S { property v upgradable; }
    component A { requires S; conditions { S.v >= 10; } }
  )");
  dom.auto_tag_properties();
  EXPECT_EQ(dom.find_interface("S")->tag_of("v"), LevelTag::Upgradable);
}

TEST(Scenario, TableOneDefinitions) {
  using domains::media::scenario;
  EXPECT_EQ(scenario('A').iface_levels.size(), 0u);
  EXPECT_EQ(scenario('B').find_iface_levels("M", "ibw")->count(), 2u);
  EXPECT_EQ(scenario('C').find_iface_levels("M", "ibw")->count(), 3u);
  EXPECT_EQ(scenario('D').find_iface_levels("M", "ibw")->count(), 5u);
  EXPECT_EQ(scenario('E').find_iface_levels("M", "ibw")->count(), 5u);
  EXPECT_EQ(scenario('D').link_levels.size(), 0u);
  ASSERT_TRUE(scenario('E').link_levels.count("lbw"));
  EXPECT_EQ(scenario('E').link_levels.at("lbw").count(), 3u);
  // Proportional stream levels (Table 1 caption).
  EXPECT_DOUBLE_EQ(scenario('C').find_iface_levels("Z", "ibw")->cutpoints()[0], 31.5);
  EXPECT_THROW(scenario('X'), Error);
}

TEST(Scenario, SetAndClearLevelsOnSpec) {
  DomainSpec dom = domains::media::make_domain();
  dom.set_levels("M", "ibw", LevelSet({50}));
  EXPECT_EQ(dom.find_interface("M")->levels.at("ibw").count(), 2u);
  EXPECT_THROW(dom.set_levels("M", "nope", LevelSet({1})), Error);
  EXPECT_THROW(dom.set_levels("Nope", "ibw", LevelSet({1})), Error);
  dom.clear_levels();
  EXPECT_TRUE(dom.find_interface("M")->levels.empty());
}

}  // namespace
}  // namespace sekitei::spec
