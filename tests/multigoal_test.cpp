// Multi-goal (multicast) deployments: the paper speaks of "the clients"
// in the plural — every goal proposition must hold, and the planner shares
// upstream components and streams between the consumers.
#include <gtest/gtest.h>

#include "core/planner.hpp"
#include "domains/media.hpp"
#include "model/compile.hpp"
#include "sim/executor.hpp"
#include "support/sorted_vec.hpp"

namespace sekitei {
namespace {

using domains::media::scenario;

struct Solved {
  std::unique_ptr<domains::media::Instance> inst;
  model::CompiledProblem cp;
  core::PlanResult result;
};

Solved solve_multicast(char sc, domains::media::Params p = {}) {
  Solved s;
  s.inst = domains::media::multicast(p);
  s.cp = model::compile(s.inst->problem, scenario(sc));
  core::Sekitei planner(s.cp);
  sim::Executor exec(s.cp);
  s.result = planner.plan([&](const core::Plan& pl) { return exec.execute(pl).feasible; });
  return s;
}

int count_place(const model::CompiledProblem& cp, const core::Plan& plan,
                const std::string& comp) {
  int n = 0;
  for (ActionId a : plan.steps) {
    const model::GroundAction& act = cp.actions[a.index()];
    if (act.kind == model::ActionKind::Place &&
        cp.domain->component_at(act.spec_index).name == comp) {
      ++n;
    }
  }
  return n;
}

TEST(MultiGoal, GoalSetContainsAllClients) {
  auto inst = domains::media::multicast();
  auto cp = model::compile(inst->problem, scenario('C'));
  EXPECT_EQ(cp.goal_props.size(), 2u);
  EXPECT_TRUE(sorted_contains(cp.goal_props, cp.goal_prop));
}

TEST(MultiGoal, BothClientsArePlacedAndServed) {
  Solved s = solve_multicast('C');
  ASSERT_TRUE(s.result.ok()) << s.result.failure;
  EXPECT_EQ(count_place(s.cp, *s.result.plan, "Client"), 2);

  sim::Executor exec(s.cp);
  auto rep = exec.execute(*s.result.plan);
  ASSERT_TRUE(rep.feasible) << rep.failure;
  const NodeId c1 = s.inst->net.find_node("c1");
  const NodeId c2 = s.inst->net.find_node("c2");
  double at_c1 = 0, at_c2 = 0;
  for (const auto& [var, val] : rep.final_vars) {
    const model::VarKey& k = s.cp.vars.key(var);
    if (k.kind != model::VarKind::IfaceProp || s.cp.iface_names[k.a] != "M") continue;
    if (NodeId(k.b) == c1) at_c1 = val;
    if (NodeId(k.b) == c2) at_c2 = val;
  }
  EXPECT_GE(at_c1, 90.0 - 1e-6);
  EXPECT_GE(at_c2, 90.0 - 1e-6);
}

TEST(MultiGoal, PipelineIsSharedNotDuplicated) {
  Solved s = solve_multicast('C');
  ASSERT_TRUE(s.result.ok());
  // One Splitter and one Zip serve both clients; only the per-client tail
  // may duplicate (Unzip/Merger placement or M forwarding).
  EXPECT_EQ(count_place(s.cp, *s.result.plan, "Splitter"), 1);
  EXPECT_EQ(count_place(s.cp, *s.result.plan, "Zip"), 1);
}

TEST(MultiGoal, CheaperThanTwoIndependentDeployments) {
  Solved s = solve_multicast('C');
  ASSERT_TRUE(s.result.ok());
  // A single-client instance of the same shape.
  auto inst1 = domains::media::chain_instance(1, 1);
  auto cp1 = model::compile(inst1->problem, scenario('C'));
  core::Sekitei planner(cp1);
  sim::Executor exec1(cp1);
  auto r1 = planner.plan([&](const core::Plan& p) { return exec1.execute(p).feasible; });
  ASSERT_TRUE(r1.ok());
  EXPECT_LT(s.result.plan->cost_lb, 2 * r1.plan->cost_lb)
      << "multicast must beat two independent deployments";
}

TEST(MultiGoal, InfeasibleSecondClientFailsCleanly) {
  // Shrink the WAN so only one client's worth of data fits: levels say the
  // demand is [90,100) per client but both share the compressed stream, so
  // the multicast is still feasible; instead cut one client's LAN off by
  // demanding more than the server can produce for both.
  domains::media::Params p;
  p.server_cap = 80.0;  // below even one client's demand level
  Solved s = solve_multicast('C', p);
  EXPECT_FALSE(s.result.ok());
}

TEST(MultiGoal, UnknownExtraGoalComponentRaises) {
  auto inst = domains::media::multicast();
  model::CppProblem prob = inst->problem;
  prob.extra_goals.emplace_back("Nope", inst->client);
  EXPECT_THROW(model::compile(prob, scenario('C')), Error);
}

}  // namespace
}  // namespace sekitei
