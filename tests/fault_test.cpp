// Deterministic fault injection: spec parsing, nth-hit/single-shot firing
// semantics, and — the point of the exercise — proof that every injected
// fault surfaces as a *classified* service response (rejected / degraded /
// solved-anyway), never a crash, a hang, or a leaked pending slot.
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "domains/media.hpp"
#include "model/textio.hpp"
#include "service/engine.hpp"
#include "service/request.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"

namespace sekitei {
namespace {

namespace media = domains::media;

std::shared_ptr<const model::LoadedProblem> tiny_loaded() {
  auto inst = media::tiny();
  return service::make_loaded(std::move(inst->domain), std::move(inst->net),
                              std::move(inst->problem), media::scenario('C'));
}

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::disarm_all(); }
  void TearDown() override { fault::disarm_all(); }
};

// ---------------------------------------------------------------------------
// Registry semantics

TEST_F(FaultTest, UnarmedPointsAreFree) {
  EXPECT_EQ(fault::armed_count(), 0u);
  EXPECT_FALSE(fault::hit("never.armed"));
  EXPECT_EQ(fault::hits("never.armed"), 0u);
}

TEST_F(FaultTest, FailModeFiresOnTheNthHitExactlyOnce) {
  fault::arm("p", /*fire_on_nth=*/3, fault::Mode::Fail);
  EXPECT_EQ(fault::armed_count(), 1u);
  EXPECT_FALSE(fault::hit("p"));  // 1st
  EXPECT_FALSE(fault::hit("p"));  // 2nd
  EXPECT_TRUE(fault::hit("p"));   // 3rd: fires
  EXPECT_FALSE(fault::hit("p"));  // single-shot: never again
  // The 4th evaluation took the nothing-armed fast path, so only 3 counted.
  EXPECT_EQ(fault::hits("p"), 3u);
  EXPECT_EQ(fault::armed_count(), 0u);  // fired faults no longer count
}

TEST_F(FaultTest, ThrowModeRaisesSekiteiError) {
  fault::arm("q", 1, fault::Mode::Throw);
  EXPECT_THROW(fault::hit("q"), Error);
  EXPECT_FALSE(fault::hit("q"));  // spent
}

TEST_F(FaultTest, ReArmingResetsTheCounter) {
  fault::arm("r", 2, fault::Mode::Fail);
  EXPECT_FALSE(fault::hit("r"));
  fault::arm("r", 2, fault::Mode::Fail);  // reset: the next hit is the 1st again
  EXPECT_FALSE(fault::hit("r"));
  EXPECT_TRUE(fault::hit("r"));
}

TEST_F(FaultTest, ConfigureParsesTheEnvSyntax) {
  EXPECT_TRUE(fault::configure("a.b:2:fail,c.d:1:throw,e.f:5"));
  const auto all = fault::status();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].point, "a.b");
  EXPECT_EQ(all[0].fire_on_nth, 2u);
  EXPECT_EQ(all[0].mode, fault::Mode::Fail);
  EXPECT_EQ(all[1].point, "c.d");
  EXPECT_EQ(all[1].mode, fault::Mode::Throw);
  EXPECT_EQ(all[2].point, "e.f");
  EXPECT_EQ(all[2].fire_on_nth, 5u);
  EXPECT_EQ(all[2].mode, fault::Mode::Throw);  // throw is the default
}

TEST_F(FaultTest, ConfigureRejectsMalformedSpecs) {
  std::string error;
  EXPECT_FALSE(fault::configure("no-colon", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(fault::configure("p:notanumber", &error));
  EXPECT_FALSE(fault::configure("p:1:explode", &error));
  EXPECT_FALSE(fault::configure(":1", &error));
}

// ---------------------------------------------------------------------------
// End-to-end: every injected fault yields a classified response

TEST_F(FaultTest, LoaderReadFaultRaisesError) {
  fault::arm("loader.read", 1, fault::Mode::Fail);  // loaders can only raise
  EXPECT_THROW(model::load_problem("", ""), Error);
  // Spent: the next load proceeds (and fails normally on the empty domain).
  EXPECT_THROW(model::load_problem("", ""), Error);
}

TEST_F(FaultTest, CacheInsertFailureOnlyCostsTheCaching) {
  service::PlanningEngine engine({.workers = 1});
  fault::arm("cache.insert", 1, fault::Mode::Fail);

  service::PlanRequest first;
  first.problem = tiny_loaded();
  EXPECT_EQ(engine.plan(std::move(first)).outcome, service::Outcome::Solved);

  // The entry was compiled but never cached, so the same content misses
  // again; this insert (the fault is spent) sticks.
  service::PlanRequest second;
  second.problem = tiny_loaded();
  EXPECT_FALSE(engine.plan(std::move(second)).cache_hit);
  service::PlanRequest third;
  third.problem = tiny_loaded();
  EXPECT_TRUE(engine.plan(std::move(third)).cache_hit);
  EXPECT_EQ(engine.pending(), 0u);
}

TEST_F(FaultTest, CacheInsertThrowIsClassifiedRejected) {
  service::PlanningEngine engine({.workers = 1});
  fault::arm("cache.insert", 1, fault::Mode::Throw);

  service::PlanRequest req;
  req.id = "doomed";
  req.problem = tiny_loaded();
  const service::PlanResponse r = engine.plan(std::move(req));
  EXPECT_EQ(r.outcome, service::Outcome::Rejected);
  EXPECT_NE(r.failure.find("cache.insert"), std::string::npos) << r.failure;

  // No leaked pending slot, and the worker survived the throw.
  EXPECT_EQ(engine.pending(), 0u);
  service::PlanRequest retry;
  retry.problem = tiny_loaded();
  EXPECT_EQ(engine.plan(std::move(retry)).outcome, service::Outcome::Solved);
}

TEST_F(FaultTest, EngineJobThrowIsClassifiedRejected) {
  service::PlanningEngine engine({.workers = 1});
  fault::arm("engine.job", 1, fault::Mode::Throw);

  service::PlanRequest req;
  req.problem = tiny_loaded();
  const service::PlanResponse r = engine.plan(std::move(req));
  EXPECT_EQ(r.outcome, service::Outcome::Rejected);
  EXPECT_NE(r.failure.find("engine.job"), std::string::npos) << r.failure;
  EXPECT_EQ(engine.pending(), 0u);

  service::PlanRequest retry;
  retry.problem = tiny_loaded();
  EXPECT_EQ(engine.plan(std::move(retry)).outcome, service::Outcome::Solved);
}

TEST_F(FaultTest, DroppedPoolJobStillAnswersItsFuture) {
  service::PlanningEngine engine({.workers = 1});
  // The pool-level fault destroys the job's std::function without running
  // it; the job guard's destructor must answer the future anyway — the
  // alternative is response.get() hanging forever.
  fault::arm("pool.job", 1, fault::Mode::Fail);

  service::PlanRequest req;
  req.id = "dropped";
  req.problem = tiny_loaded();
  const service::PlanResponse r = engine.plan(std::move(req));
  EXPECT_EQ(r.outcome, service::Outcome::Rejected);
  EXPECT_NE(r.failure.find("dropped"), std::string::npos) << r.failure;
  EXPECT_EQ(engine.pending(), 0u);

  // The worker thread survived and serves the next request.
  service::PlanRequest retry;
  retry.problem = tiny_loaded();
  EXPECT_EQ(engine.plan(std::move(retry)).outcome, service::Outcome::Solved);
}

TEST_F(FaultTest, ReplayValidateFaultNeverHangsTheRequest) {
  service::PlanningEngine engine({.workers = 1});
  fault::arm("replay.validate", 1, fault::Mode::Fail);

  service::PlanRequest req;
  req.problem = tiny_loaded();
  const service::PlanResponse r = engine.plan(std::move(req));
  // A single rejected from-init replay is recoverable (the search keeps
  // going), so the request answers with a normal classification either way.
  EXPECT_TRUE(r.outcome == service::Outcome::Solved ||
              r.outcome == service::Outcome::Infeasible)
      << service::outcome_name(r.outcome);
  EXPECT_EQ(engine.pending(), 0u);

  service::PlanRequest retry;
  retry.problem = tiny_loaded();
  EXPECT_EQ(engine.plan(std::move(retry)).outcome, service::Outcome::Solved);
}

}  // namespace
}  // namespace sekitei
