// Helper translation unit for the determinism guard in stats_test.cpp.
//
// This file is compiled with -DSEKITEI_LOG_DISABLED (see tests/CMakeLists.txt
// — the name deliberately avoids the *_test.cpp glob), so every SEKITEI_LOG_*
// macro here expands to nothing and trace::Span/counter are no-ops.  The
// planner library itself is still the instrumented build; the guard asserts
// that (a) the macros really compile out — their arguments are never
// evaluated — and (b) the plan produced from this quiet TU is byte-identical
// to one produced while logging and tracing are fully live.
#include "core/planner.hpp"
#include "domains/media.hpp"
#include "model/compile.hpp"
#include "sim/executor.hpp"
#include "support/log.hpp"
#include "support/trace.hpp"

#ifndef SEKITEI_LOG_DISABLED
#error "stats_log_disabled.cpp must be compiled with -DSEKITEI_LOG_DISABLED"
#endif

namespace sekitei::testing {

std::string plan_small_c_quiet(double* cost_out, int* log_args_evaluated) {
  int evaluated = 0;
  // With the macros compiled out this argument expression must not run.
  SEKITEI_LOG_ERROR("tests.quiet", "must vanish", log::kv("side_effect", ++evaluated));
  if (log_args_evaluated != nullptr) *log_args_evaluated = evaluated;
  trace::Span span("tests.quiet");       // the no-op variants: must still compile
  trace::counter("tests.quiet", 1.0);

  auto inst = domains::media::small();
  auto cp = model::compile(inst->problem, domains::media::scenario('C'));
  core::Sekitei planner(cp);
  sim::Executor exec(cp);
  auto r = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
  if (!r.ok()) return {};
  if (cost_out != nullptr) *cost_out = r.plan->cost_lb;
  return r.plan->str(cp);
}

}  // namespace sekitei::testing
