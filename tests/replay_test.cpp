// Unit tests for the optimistic-map replay engine (core/replay) — the Fig. 8
// machinery: interval merging, degradable/upgradable shifts, condition
// narrowing, effect execution and the greedy worst-case mode.
#include <gtest/gtest.h>

#include "core/replay.hpp"
#include "domains/media.hpp"
#include "model/compile.hpp"

namespace sekitei::core {
namespace {

using domains::media::scenario;

/// Finds one action by predicate; fails the test if absent.
template <class Pred>
ActionId find_action(const model::CompiledProblem& cp, Pred pred) {
  for (std::uint32_t i = 0; i < cp.actions.size(); ++i) {
    if (pred(cp.actions[i])) return ActionId(i);
  }
  ADD_FAILURE() << "required action not found";
  return ActionId{};
}

ActionId place_of(const model::CompiledProblem& cp, const std::string& comp, NodeId node,
                  std::uint32_t in_level) {
  return find_action(cp, [&](const model::GroundAction& a) {
    if (a.kind != model::ActionKind::Place ||
        cp.domain->component_at(a.spec_index).name != comp || !(a.node == node)) {
      return false;
    }
    for (std::uint32_t l : a.in_levels) {
      if (l != in_level) return false;
    }
    for (std::uint32_t l : a.out_levels) {
      if (l != in_level) return false;
    }
    return true;
  });
}

ActionId cross_of(const model::CompiledProblem& cp, const std::string& iface, NodeId from,
                  std::uint32_t in_level, std::uint32_t out_level = UINT32_MAX) {
  return find_action(cp, [&](const model::GroundAction& a) {
    return a.kind == model::ActionKind::Cross && cp.iface_names[a.spec_index] == iface &&
           a.node == from && a.in_levels[0] == in_level &&
           (out_level == UINT32_MAX || a.out_levels[0] == out_level);
  });
}

TEST(Replay, EmptyTailFromInitSucceeds) {
  auto inst = domains::media::tiny();
  auto cp = model::compile(inst->problem, scenario('C'));
  Replayer r(cp);
  EXPECT_TRUE(r.replay({}, true, ReplayMode::Optimistic));
}

TEST(Replay, DirectCrossThenClientFailsOnDemand) {
  // cross M over the 70-unit link, then require >= 90 at the client: the
  // narrowing of the client's condition empties the interval.
  auto inst = domains::media::tiny();
  auto cp = model::compile(inst->problem, scenario('B'));
  const ActionId cross = cross_of(cp, "M", inst->server, 0);
  const ActionId client = place_of(cp, "Client", inst->client, 0);
  Replayer r(cp);
  const ActionId tail[] = {cross, client};
  EXPECT_FALSE(r.replay(tail, true, ReplayMode::Optimistic));
  EXPECT_FALSE(r.failure().empty());
}

TEST(Replay, SplitterChainSucceedsWithinLevels) {
  auto inst = domains::media::tiny();
  auto cp = model::compile(inst->problem, scenario('C'));
  const ActionId sp = place_of(cp, "Splitter", inst->server, 1);
  const ActionId zip = place_of(cp, "Zip", inst->server, 1);
  const ActionId cz = cross_of(cp, "Z", inst->server, 1, 1);
  const ActionId ci = cross_of(cp, "I", inst->server, 1, 1);
  const ActionId uz = place_of(cp, "Unzip", inst->client, 1);
  const ActionId mr = place_of(cp, "Merger", inst->client, 1);
  const ActionId cl = place_of(cp, "Client", inst->client, 1);
  Replayer r(cp);
  const ActionId tail[] = {sp, zip, cz, ci, uz, mr, cl};
  EXPECT_TRUE(r.replay(tail, true, ReplayMode::Optimistic)) << r.failure();
}

TEST(Replay, PartialTailUsesOptimisticFirstMention) {
  // A tail that starts mid-plan (client only): the M stream at the client is
  // unknown, so its optimistic interval applies and the tail is accepted.
  auto inst = domains::media::tiny();
  auto cp = model::compile(inst->problem, scenario('C'));
  const ActionId cl = place_of(cp, "Client", inst->client, 1);
  Replayer r(cp);
  const ActionId tail[] = {cl};
  EXPECT_TRUE(r.replay(tail, false, ReplayMode::Optimistic));
}

TEST(Replay, WorstCaseCollapsesUnknownsToMaximum) {
  // Greedy mode: the Splitter's unknown input collapses to +inf upstream, so
  // its CPU condition certainly fails (the essence of Scenario 1).
  auto inst = domains::media::tiny();
  auto cp = model::compile(inst->problem, scenario('A'));
  const ActionId sp = place_of(cp, "Splitter", inst->server, 0);
  Replayer r(cp);
  const ActionId tail[] = {sp};
  EXPECT_FALSE(r.replay(tail, false, ReplayMode::WorstCase));
  EXPECT_TRUE(r.replay(tail, false, ReplayMode::Optimistic))
      << "the leveled planner keeps the branch alive: the splitter COULD "
         "process little";
}

TEST(Replay, WorstCaseFromInitUsesFullProduction) {
  // From the initial state the greedy mode pushes all 200 units: the
  // splitter needs 40 CPU > 30 and fails even though levels would allow less.
  auto inst = domains::media::tiny();
  auto cp = model::compile(inst->problem, scenario('A'));
  const ActionId sp = place_of(cp, "Splitter", inst->server, 0);
  Replayer r(cp);
  const ActionId tail[] = {sp};
  EXPECT_FALSE(r.replay(tail, true, ReplayMode::WorstCase));
  EXPECT_NE(r.failure().find("condition failed"), std::string::npos) << r.failure();
}

TEST(Replay, LinkConsumptionAccumulatesAcrossCrossings) {
  // Scenario E levels the link bandwidth; crossing Z then I over the same
  // link forces both reservations into one leveled link interval.  Choosing
  // the top link level for both is consistent; the replay tracks the pool.
  auto inst = domains::media::tiny();
  auto cp = model::compile(inst->problem, scenario('E'));
  // Find Z and I crossings with compatible link levels.
  std::vector<ActionId> zs, is;
  for (std::uint32_t i = 0; i < cp.actions.size(); ++i) {
    const model::GroundAction& a = cp.actions[i];
    if (a.kind != model::ActionKind::Cross || a.node != inst->server) continue;
    if (cp.iface_names[a.spec_index] == "Z" && a.in_levels[0] == 1) zs.emplace_back(i);
    if (cp.iface_names[a.spec_index] == "I" && a.in_levels[0] == 1) is.emplace_back(i);
  }
  ASSERT_FALSE(zs.empty());
  ASSERT_FALSE(is.empty());
  bool some_pair_ok = false;
  Replayer r(cp);
  for (ActionId z : zs) {
    for (ActionId i : is) {
      const ActionId tail[] = {z, i};
      some_pair_ok = some_pair_ok || r.replay(tail, true, ReplayMode::Optimistic);
    }
  }
  EXPECT_TRUE(some_pair_ok);
}

TEST(Replay, DegradableInputAcceptsHigherProduction) {
  // Init provides M in [0,200]; the Splitter at level [90,100) merges the
  // degradable input down into its level instead of failing.
  auto inst = domains::media::tiny();
  auto cp = model::compile(inst->problem, scenario('C'));
  const ActionId sp = place_of(cp, "Splitter", inst->server, 1);
  Replayer r(cp);
  const ActionId tail[] = {sp};
  ASSERT_TRUE(r.replay(tail, true, ReplayMode::Optimistic)) << r.failure();
}

TEST(Replay, ResourceMapEpochReuseIsClean) {
  // Two consecutive replays must not leak state across runs.
  auto inst = domains::media::tiny();
  auto cp = model::compile(inst->problem, scenario('C'));
  const ActionId sp = place_of(cp, "Splitter", inst->server, 1);
  const ActionId zip = place_of(cp, "Zip", inst->server, 1);
  Replayer r(cp);
  const ActionId t1[] = {sp, zip};
  const ActionId t2[] = {zip};  // zip alone lacks its T input value from sp
  ASSERT_TRUE(r.replay(t1, true, ReplayMode::Optimistic));
  // t2 from init: T@server never produced; the zip's optimistic input
  // interval applies (no stale T from the previous replay), and the replay
  // still succeeds *optimistically* — but the map must not contain sp's
  // narrowed values.
  ASSERT_TRUE(r.replay(t2, true, ReplayMode::Optimistic));
  bool found_m_from_prev = false;
  for (std::size_t v = 0; v < cp.vars.size(); ++v) {
    const model::VarKey& k = cp.vars.key(VarId(static_cast<std::uint32_t>(v)));
    if (k.kind == model::VarKind::IfaceProp && cp.iface_names[k.a] == "I") {
      found_m_from_prev = found_m_from_prev || r.map().has(VarId(static_cast<std::uint32_t>(v)));
    }
  }
  EXPECT_FALSE(found_m_from_prev) << "I stream produced by sp leaked into the next replay";
}

}  // namespace
}  // namespace sekitei::core
