// Drift-resilient replanning through the service: repair requests through
// PlanningEngine::process (survivors, churn accounting, the FullReplan
// ladder rung, repair metrics) and byte-level agreement between an
// in-process repair and the same repair served over the daemon's wire.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/planner.hpp"
#include "domains/media.hpp"
#include "model/compile.hpp"
#include "model/textio.hpp"
#include "repair/repair.hpp"
#include "server/client.hpp"
#include "server/daemon.hpp"
#include "service/engine.hpp"
#include "service/request.hpp"
#include "service/wire.hpp"
#include "sim/executor.hpp"
#include "support/fault.hpp"
#include "support/json_reader.hpp"
#include "support/metrics.hpp"

namespace sekitei::service {
namespace {

namespace media = domains::media;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string data_file(const char* name) {
  return std::string(SEKITEI_TEST_DATA_DIR) + "/" + name;
}

/// Diamond instance solved through a 1-worker engine with the plan echoed,
/// plus the loaded problem both the base and the repair request share.
struct Solved {
  std::shared_ptr<const model::LoadedProblem> problem;
  PlanResponse base;
};

Solved solve_diamond(PlanningEngine& engine) {
  Solved s;
  auto inst = media::diamond();
  s.problem = make_loaded(std::move(inst->domain), std::move(inst->net),
                          std::move(inst->problem), media::scenario('C'));
  PlanRequest req;
  req.id = "base";
  req.problem = s.problem;
  req.echo_plan = true;
  s.base = engine.plan(std::move(req));
  return s;
}

core::Plan prior_from_echo(const PlanResponse& r) {
  core::Plan prior;
  for (const std::uint32_t idx : r.plan_steps) prior.steps.emplace_back(idx);
  return prior;
}

/// The WAN link the echoed plan crosses.
LinkId used_wan_link(const model::LoadedProblem& lp, const core::Plan& prior) {
  const model::CompiledProblem cp = model::compile(lp.problem, lp.scenario);
  for (const ActionId a : prior.steps) {
    const model::GroundAction& act = cp.actions[a.index()];
    if (act.kind == model::ActionKind::Cross &&
        lp.net.link(act.link).cls == net::LinkClass::Wan) {
      return act.link;
    }
  }
  return LinkId{};
}

PlanRequest repair_request(const Solved& s, repair::Damage damage,
                           double migration_penalty = 0.0) {
  PlanRequest req;
  req.id = "repair";
  req.problem = s.problem;
  req.repair.emplace();
  req.repair->prior_plan = prior_from_echo(s.base);
  req.repair->choices = s.base.choices;
  req.repair->damage = std::move(damage);
  req.repair->migration_penalty = migration_penalty;
  return req;
}

TEST(DriftTest, RepairRequestRepairsInPlace) {
  PlanningEngine engine({.workers = 1});
  const Solved s = solve_diamond(engine);
  ASSERT_TRUE(s.base.ok()) << s.base.failure;
  ASSERT_FALSE(s.base.plan_steps.empty());
  ASSERT_FALSE(s.base.choices.empty());

  repair::Damage dmg;
  dmg.failed_links.push_back(used_wan_link(*s.problem, prior_from_echo(s.base)));
  ASSERT_TRUE(dmg.failed_links[0].valid());

  const PlanResponse r = engine.plan(repair_request(s, dmg, /*migration_penalty=*/2.0));
  ASSERT_EQ(r.outcome, Outcome::Solved) << r.failure;
  EXPECT_TRUE(r.repair_requested);
  EXPECT_TRUE(r.repaired);
  EXPECT_EQ(r.ladder, LadderStep::Primary);
  ASSERT_TRUE(r.plan.has_value());
  // The reroute re-establishes the cut-off components at their original
  // nodes: no migrations, no lost placements — and a patch strictly smaller
  // than redeploying everything.
  EXPECT_EQ(r.migrations, 0u);
  EXPECT_EQ(r.disruption, 0u);
  EXPECT_LT(r.plan->size(), prior_from_echo(s.base).size());
  EXPECT_DOUBLE_EQ(r.repair_cost, r.plan->cost_lb);
}

TEST(DriftTest, CapacityDegradationOnlyRepairsWithZeroMigrations) {
  PlanningEngine engine({.workers = 1});
  const Solved s = solve_diamond(engine);
  ASSERT_TRUE(s.base.ok()) << s.base.failure;

  // Capacity drift, not binary failure: the crossed WAN link shrinks to a
  // sliver of bandwidth.  The contract-violation fixpoint evicts the
  // overdrawn crossing, and the repair reroutes over the parallel WAN route
  // re-establishing every component in place: a zero-migration RECONNECT
  // patch.
  repair::Damage dmg;
  const LinkId wan = used_wan_link(*s.problem, prior_from_echo(s.base));
  ASSERT_TRUE(wan.valid());
  dmg.degraded_links.push_back({wan, "lbw", 1.0});
  ASSERT_TRUE(dmg.failed_nodes.empty() && dmg.failed_links.empty());

  const PlanResponse r = engine.plan(repair_request(s, dmg, /*migration_penalty=*/5.0));
  ASSERT_TRUE(r.ok()) << r.failure;
  EXPECT_TRUE(r.repaired);
  EXPECT_EQ(r.migrations, 0u);
  EXPECT_EQ(r.disruption, 0u);
  EXPECT_DOUBLE_EQ(r.repair_cost, r.plan->cost_lb);
}

TEST(DriftTest, RepairPlanFaultFallsDownLadderToFullReplan) {
  PlanningEngine engine({.workers = 1});
  const Solved s = solve_diamond(engine);
  ASSERT_TRUE(s.base.ok()) << s.base.failure;

  repair::Damage dmg;
  dmg.failed_links.push_back(used_wan_link(*s.problem, prior_from_echo(s.base)));

  // Fail mode at repair.plan behaves exactly like the repair search's budget
  // slice expiring with no incumbent: the ladder must answer with a full
  // replan on the damaged network, not a bare deadline_exceeded.
  fault::arm("repair.plan", 1, fault::Mode::Fail);
  const PlanResponse r = engine.plan(repair_request(s, dmg));
  fault::disarm_all();

  EXPECT_EQ(r.outcome, Outcome::Degraded) << r.failure;
  EXPECT_EQ(r.ladder, LadderStep::FullReplan);
  EXPECT_TRUE(r.repair_requested);
  EXPECT_FALSE(r.repaired);
  ASSERT_TRUE(r.plan.has_value());
  EXPECT_NE(r.failure.find("full replan"), std::string::npos);
}

TEST(DriftTest, RepairSurvivorsFaultAnswersRejected) {
  PlanningEngine engine({.workers = 1});
  const Solved s = solve_diamond(engine);
  ASSERT_TRUE(s.base.ok()) << s.base.failure;

  repair::Damage dmg;
  dmg.failed_links.push_back(used_wan_link(*s.problem, prior_from_echo(s.base)));

  fault::arm("repair.survivors", 1, fault::Mode::Throw);
  const PlanResponse r = engine.plan(repair_request(s, dmg));
  fault::disarm_all();

  EXPECT_EQ(r.outcome, Outcome::Rejected);
  EXPECT_NE(r.failure.find("repair.survivors"), std::string::npos);
}

TEST(DriftTest, UnsurvivableDriftRejectedByPreflightWithoutSearch) {
  PlanningEngine engine({.workers = 1});
  const Solved s = solve_diamond(engine);
  ASSERT_TRUE(s.base.ok()) << s.base.failure;

  // Sever every link: the goal stream cannot reach the goal node on the bare
  // damaged network, so no rung of the ladder — repair, anytime, greedy or
  // full replan — could ever produce a plan.
  repair::Damage dmg;
  for (std::uint32_t l = 0; l < s.problem->net.link_count(); ++l) {
    dmg.failed_links.push_back(LinkId(l));
  }
  PlanRequest req = repair_request(s, std::move(dmg));
  req.preflight = true;
  const PlanResponse r = engine.plan(std::move(req));

  EXPECT_EQ(r.outcome, Outcome::Infeasible);
  EXPECT_TRUE(r.repair_preflight_ran);
  EXPECT_TRUE(r.repair_preflight_rejected);
  // The certificate is produced by the static fixpoint, never by search.
  EXPECT_EQ(r.stats.rg_expansions, 0u);
  EXPECT_NE(r.failure.find("unsurvivable drift"), std::string::npos) << r.failure;
}

TEST(DriftTest, SurvivableDriftPassesPreflightAndStillRepairs) {
  PlanningEngine engine({.workers = 1});
  const Solved s = solve_diamond(engine);
  ASSERT_TRUE(s.base.ok()) << s.base.failure;

  repair::Damage dmg;
  dmg.failed_links.push_back(used_wan_link(*s.problem, prior_from_echo(s.base)));
  PlanRequest req = repair_request(s, std::move(dmg));
  req.preflight = true;
  const PlanResponse r = engine.plan(std::move(req));

  ASSERT_EQ(r.outcome, Outcome::Solved) << r.failure;
  EXPECT_TRUE(r.repair_preflight_ran);
  EXPECT_FALSE(r.repair_preflight_rejected);
  EXPECT_TRUE(r.repaired);
}

TEST(DriftTest, RepairMetricsCountOutcomesAndMigrations) {
  const auto total = [](const char* name) {
    std::uint64_t sum = 0;
    for (const metrics::MetricSnapshot& m : metrics::registry().snapshot()) {
      if (m.name == name) sum += m.kind == metrics::Kind::Histogram ? m.hist_count : m.counter;
    }
    return sum;
  };
  const std::uint64_t repairs_before = total("service.repairs");
  const std::uint64_t migrations_before = total("repair.migrations");

  PlanningEngine engine({.workers = 1});
  const Solved s = solve_diamond(engine);
  ASSERT_TRUE(s.base.ok());
  repair::Damage dmg;
  dmg.failed_links.push_back(used_wan_link(*s.problem, prior_from_echo(s.base)));
  const PlanResponse r = engine.plan(repair_request(s, dmg));
  ASSERT_TRUE(r.ok()) << r.failure;

  EXPECT_EQ(total("service.repairs"), repairs_before + 1);
  EXPECT_EQ(total("repair.migrations"), migrations_before + 1);
}

TEST(DriftTest, RepairOverDaemonWireMatchesInProcess) {
  const std::string domain_text = slurp(data_file("media.sk"));
  const std::string problem_text = slurp(data_file("small.sk"));

  // Solve once in-process with the plan echoed, exactly as a wire client
  // would via echo_plan.
  std::shared_ptr<const model::LoadedProblem> lp =
      model::load_problem(domain_text, problem_text);
  PlanningEngine engine({.workers = 1});
  PlanRequest base_req;
  base_req.id = "base";
  base_req.problem = lp;
  base_req.echo_plan = true;
  const PlanResponse base = engine.plan(std::move(base_req));
  ASSERT_TRUE(base.ok()) << base.failure;
  ASSERT_FALSE(base.plan_steps.empty());

  // The drift event the fuzzer's drift oracle uses, mapped to wire names.
  const core::Plan prior = prior_from_echo(base);
  const model::CompiledProblem cp = model::compile(lp->problem, lp->scenario);
  const repair::Damage damage = repair::seeded_drift(cp, prior, /*seed=*/7);
  ASSERT_FALSE(damage.empty());

  wire::WireRequest w;
  w.id = "drift";
  w.problem_text = problem_text;
  w.repair = true;
  w.prior_plan = base.plan_steps;
  w.choices = base.choices;
  w.migration_penalty = 2.0;
  for (const NodeId n : damage.failed_nodes) {
    w.damage.failed_nodes.push_back(lp->net.node(n).name);
  }
  for (const LinkId l : damage.failed_links) {
    w.damage.failed_links.emplace_back(lp->net.node(lp->net.link(l).a).name,
                                       lp->net.node(lp->net.link(l).b).name);
  }
  for (const repair::DegradedNode& dn : damage.degraded_nodes) {
    w.damage.degraded_nodes.push_back({lp->net.node(dn.node).name, dn.resource, dn.capacity});
  }
  for (const repair::DegradedLink& dl : damage.degraded_links) {
    w.damage.degraded_links.push_back({lp->net.node(lp->net.link(dl.link).a).name,
                                       lp->net.node(lp->net.link(dl.link).b).name, dl.resource,
                                       dl.capacity});
  }

  // In-process reference: resolve the wire payload exactly as the daemon
  // does, then plan.
  RepairSpec spec;
  std::string error;
  ASSERT_TRUE(wire::resolve_repair(w, *lp, spec, error)) << error;
  PlanRequest rep_req;
  rep_req.id = "drift";
  rep_req.problem = lp;
  rep_req.repair = std::move(spec);
  const PlanResponse local = engine.plan(std::move(rep_req));

  // The same frame over a real loopback daemon.
  server::Daemon::Options opt;
  opt.domain_text = domain_text;
  opt.engine.workers = 1;
  opt.session.poll_tick_ms = 10.0;
  opt.accept_tick_ms = 10.0;
  server::Daemon daemon(std::move(opt));
  daemon.start();
  ASSERT_NE(daemon.port(), 0);
  server::FrameClient client(daemon.port());
  ASSERT_TRUE(client.send(w));
  std::string body;
  ASSERT_EQ(client.recv_frame(body, 30000.0), server::FrameClient::Recv::Frame);
  daemon.stop();

  json::Value v;
  ASSERT_TRUE(json::parse(body, v)) << body;
  ASSERT_TRUE(v.is_object());
  const auto str = [&](const char* key) {
    const json::Value* f = v.find(key);
    return f != nullptr && f->is_string() ? f->str : std::string{};
  };
  const auto num = [&](const char* key) {
    const json::Value* f = v.find(key);
    return f != nullptr && f->is_number() ? f->number : -1.0;
  };
  const auto boolean = [&](const char* key) {
    const json::Value* f = v.find(key);
    return f != nullptr && f->is_bool() && f->boolean;
  };
  EXPECT_EQ(str("outcome"), outcome_name(local.outcome));
  EXPECT_EQ(str("ladder"), ladder_step_name(local.ladder));
  EXPECT_EQ(boolean("repaired"), local.repaired);
  EXPECT_EQ(num("migrations"), local.migrations);
  EXPECT_EQ(num("reconnects"), local.reconnects);
  EXPECT_EQ(num("disruption"), local.disruption);
  ASSERT_TRUE(local.plan.has_value()) << local.failure;
  EXPECT_EQ(num("plan_actions"), static_cast<double>(local.plan->size()));
  EXPECT_NEAR(num("cost_lb"), local.plan->cost_lb, 1e-3);
  EXPECT_NEAR(num("repair_cost"), local.repair_cost, 1e-3);
}

TEST(DriftTest, ResolveRepairRejectsUnknownNames) {
  std::shared_ptr<const model::LoadedProblem> lp = model::load_problem(
      slurp(data_file("media.sk")), slurp(data_file("small.sk")));
  wire::WireRequest w;
  w.repair = true;
  RepairSpec spec;
  std::string error;

  w.damage.failed_nodes.push_back("n_missing");
  EXPECT_FALSE(wire::resolve_repair(w, *lp, spec, error));
  EXPECT_NE(error.find("unknown node \"n_missing\""), std::string::npos);

  w.damage.failed_nodes.clear();
  w.damage.failed_links.emplace_back("n0", "n4");  // both exist, not adjacent
  EXPECT_FALSE(wire::resolve_repair(w, *lp, spec, error));
  EXPECT_NE(error.find("no link between"), std::string::npos);
}

TEST(DriftTest, SeededDriftIsDeterministic) {
  std::shared_ptr<const model::LoadedProblem> lp = model::load_problem(
      slurp(data_file("media.sk")), slurp(data_file("small.sk")));
  const model::CompiledProblem cp = model::compile(lp->problem, lp->scenario);
  core::Sekitei planner(cp);
  sim::Executor exec(cp);
  const auto r = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
  ASSERT_TRUE(r.ok());

  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const repair::Damage a = repair::seeded_drift(cp, *r.plan, seed);
    const repair::Damage b = repair::seeded_drift(cp, *r.plan, seed);
    EXPECT_FALSE(a.empty());
    ASSERT_EQ(a.failed_nodes.size(), b.failed_nodes.size());
    ASSERT_EQ(a.failed_links.size(), b.failed_links.size());
    ASSERT_EQ(a.degraded_nodes.size(), b.degraded_nodes.size());
    ASSERT_EQ(a.degraded_links.size(), b.degraded_links.size());
    for (std::size_t i = 0; i < a.failed_nodes.size(); ++i) {
      EXPECT_EQ(a.failed_nodes[i], b.failed_nodes[i]);
    }
    for (std::size_t i = 0; i < a.degraded_nodes.size(); ++i) {
      EXPECT_EQ(a.degraded_nodes[i].node, b.degraded_nodes[i].node);
      EXPECT_DOUBLE_EQ(a.degraded_nodes[i].capacity, b.degraded_nodes[i].capacity);
    }
  }
}

}  // namespace
}  // namespace sekitei::service
