// End-to-end planner tests on the paper's media-delivery domain: the Tiny
// and Small networks of Figs. 3/4/9 and the level scenarios of Table 1.
#include <gtest/gtest.h>

#include "core/planner.hpp"
#include "domains/media.hpp"
#include "model/compile.hpp"
#include "sim/executor.hpp"

namespace sekitei {
namespace {

using core::PlannerOptions;
using core::PlanResult;
using domains::media::Instance;

PlanResult solve(const model::CompiledProblem& cp, PlannerOptions::Mode mode) {
  PlannerOptions opt;
  opt.mode = mode;
  core::Sekitei planner(cp, opt);
  sim::Executor exec(cp);
  return planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
}

int count_actions(const model::CompiledProblem& cp, const core::Plan& plan,
                  model::ActionKind kind, const std::string& name) {
  int n = 0;
  for (ActionId a : plan.steps) {
    const model::GroundAction& act = cp.actions[a.index()];
    if (act.kind != kind) continue;
    const std::string& nm = kind == model::ActionKind::Place
                                ? cp.domain->component_at(act.spec_index).name
                                : cp.iface_names[act.spec_index];
    if (nm == name) ++n;
  }
  return n;
}

// ---- Scenario 1 (Fig. 3): greedy fails, leveled planner succeeds -----------

TEST(TinyNetwork, ScenarioA_GreedyFindsNoPlan) {
  auto inst = domains::media::tiny();
  auto cp = model::compile(inst->problem, domains::media::scenario('A'));
  PlanResult r = solve(cp, PlannerOptions::Mode::Greedy);
  EXPECT_FALSE(r.ok()) << "greedy must fail: splitting 200 units needs 40 CPU > 30";
  EXPECT_FALSE(r.stats.logically_unreachable)
      << "the failure is resource-driven, not logical";
}

TEST(TinyNetwork, ScenarioB_FindsSevenActionPlan) {
  auto inst = domains::media::tiny();
  auto cp = model::compile(inst->problem, domains::media::scenario('B'));
  PlanResult r = solve(cp, PlannerOptions::Mode::Leveled);
  ASSERT_TRUE(r.ok()) << r.failure;
  // Fig. 4: Splitter, Zip, cross Z, cross I, Unzip, Merger + Client = 7.
  EXPECT_EQ(r.plan->size(), 7u);
  // Table 2 Tiny/B: with a single 100-cutpoint every stream level starts at
  // 0, so the lower bound on cost is exactly the action count.
  EXPECT_DOUBLE_EQ(r.plan->cost_lb, 7.0);
}

TEST(TinyNetwork, ScenarioB_PlanShapeMatchesFig4) {
  auto inst = domains::media::tiny();
  auto cp = model::compile(inst->problem, domains::media::scenario('B'));
  PlanResult r = solve(cp, PlannerOptions::Mode::Leveled);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(count_actions(cp, *r.plan, model::ActionKind::Place, "Splitter"), 1);
  EXPECT_EQ(count_actions(cp, *r.plan, model::ActionKind::Place, "Zip"), 1);
  EXPECT_EQ(count_actions(cp, *r.plan, model::ActionKind::Place, "Unzip"), 1);
  EXPECT_EQ(count_actions(cp, *r.plan, model::ActionKind::Place, "Merger"), 1);
  EXPECT_EQ(count_actions(cp, *r.plan, model::ActionKind::Place, "Client"), 1);
  EXPECT_EQ(count_actions(cp, *r.plan, model::ActionKind::Cross, "Z"), 1);
  EXPECT_EQ(count_actions(cp, *r.plan, model::ActionKind::Cross, "I"), 1);
  EXPECT_EQ(count_actions(cp, *r.plan, model::ActionKind::Cross, "M"), 0)
      << "the raw M stream cannot fit the 70-unit WAN link";
}

TEST(TinyNetwork, ScenarioC_ProcessesHundredUnits) {
  auto inst = domains::media::tiny();
  auto cp = model::compile(inst->problem, domains::media::scenario('C'));
  PlanResult r = solve(cp, PlannerOptions::Mode::Leveled);
  ASSERT_TRUE(r.ok()) << r.failure;
  EXPECT_EQ(r.plan->size(), 7u);
  // The cost lower bound now reflects the [90,100) stream levels.
  EXPECT_GT(r.plan->cost_lb, 30.0);

  sim::Executor exec(cp);
  auto rep = exec.execute(*r.plan);
  ASSERT_TRUE(rep.feasible) << rep.failure;
  // Greedy within the [90,100) level: 100 units are processed ("plans ...
  // involve processing 100 units of bandwidth", Section 4.2), so
  // Z + I = 35 + 30 = 65 units cross the WAN link.
  EXPECT_NEAR(rep.max_reserved(net::LinkClass::Wan), 65.0, 1e-3);
}

TEST(TinyNetwork, ScenarioD_SameQualityAsC) {
  auto inst = domains::media::tiny();
  auto cpC = model::compile(inst->problem, domains::media::scenario('C'));
  auto cpD = model::compile(inst->problem, domains::media::scenario('D'));
  PlanResult rc = solve(cpC, PlannerOptions::Mode::Leveled);
  PlanResult rd = solve(cpD, PlannerOptions::Mode::Leveled);
  ASSERT_TRUE(rc.ok());
  ASSERT_TRUE(rd.ok());
  EXPECT_EQ(rc.plan->size(), rd.plan->size());
  EXPECT_NEAR(rc.plan->cost_lb, rd.plan->cost_lb, 1e-9);
  // More levels => more leveled actions survive (Table 2, column 5).
  EXPECT_GT(cpD.actions.size(), cpC.actions.size());
}

TEST(TinyNetwork, ScenarioE_LevelsLinkBandwidthToo) {
  auto inst = domains::media::tiny();
  auto cpD = model::compile(inst->problem, domains::media::scenario('D'));
  auto cpE = model::compile(inst->problem, domains::media::scenario('E'));
  PlanResult re = solve(cpE, PlannerOptions::Mode::Leveled);
  ASSERT_TRUE(re.ok()) << re.failure;
  EXPECT_EQ(re.plan->size(), 7u);
  EXPECT_GT(cpE.actions.size(), cpD.actions.size());
}

// ---- Small network (Fig. 9) -------------------------------------------------

TEST(SmallNetwork, ScenarioB_SuboptimalForwardsRawStream) {
  auto inst = domains::media::small();
  auto cp = model::compile(inst->problem, domains::media::scenario('B'));
  PlanResult r = solve(cp, PlannerOptions::Mode::Leveled);
  ASSERT_TRUE(r.ok()) << r.failure;
  // Fig. 9 top: 10 actions; M is forwarded raw over the LAN links, so the
  // LAN reservation is the full 100 units (Table 2, column 4).
  EXPECT_EQ(r.plan->size(), 10u);
  EXPECT_DOUBLE_EQ(r.plan->cost_lb, 10.0);
  sim::Executor exec(cp);
  auto rep = exec.execute(*r.plan);
  ASSERT_TRUE(rep.feasible) << rep.failure;
  EXPECT_NEAR(rep.max_reserved(net::LinkClass::Lan), 100.0, 1e-3);
}

TEST(SmallNetwork, ScenarioC_OptimalSplitsAtServer) {
  auto inst = domains::media::small();
  auto cp = model::compile(inst->problem, domains::media::scenario('C'));
  PlanResult r = solve(cp, PlannerOptions::Mode::Leveled);
  ASSERT_TRUE(r.ok()) << r.failure;
  // Fig. 9 bottom: 13 actions, splitting at the server so LAN links carry
  // only Z + I = 65 units instead of 100.
  EXPECT_EQ(r.plan->size(), 13u);
  sim::Executor exec(cp);
  auto rep = exec.execute(*r.plan);
  ASSERT_TRUE(rep.feasible) << rep.failure;
  EXPECT_NEAR(rep.max_reserved(net::LinkClass::Lan), 65.0, 1e-3);
}

TEST(SmallNetwork, ScenarioC_CheaperThanForwarding) {
  auto inst = domains::media::small();
  auto cpB = model::compile(inst->problem, domains::media::scenario('B'));
  auto cpC = model::compile(inst->problem, domains::media::scenario('C'));
  PlanResult rb = solve(cpB, PlannerOptions::Mode::Leveled);
  PlanResult rc = solve(cpC, PlannerOptions::Mode::Leveled);
  ASSERT_TRUE(rb.ok() && rc.ok());
  sim::Executor execB(cpB), execC(cpC);
  const double costB = execB.execute(*rb.plan).actual_cost;
  const double costC = execC.execute(*rc.plan).actual_cost;
  // The paper's 72 vs 63: the 13-action split plan beats the 10-action
  // forwarding plan on realized cost.
  EXPECT_LT(costC, costB);
}

TEST(SmallNetwork, ScenarioA_GreedyFindsNoPlan) {
  auto inst = domains::media::small();
  auto cp = model::compile(inst->problem, domains::media::scenario('A'));
  PlanResult r = solve(cp, PlannerOptions::Mode::Greedy);
  EXPECT_FALSE(r.ok());
}

// ---- plan validity invariants ----------------------------------------------

TEST(PlanInvariants, EveryReturnedPlanExecutesConcretely) {
  for (char sc : {'B', 'C', 'D', 'E'}) {
    auto inst = domains::media::small();
    auto cp = model::compile(inst->problem, domains::media::scenario(sc));
    PlanResult r = solve(cp, PlannerOptions::Mode::Leveled);
    ASSERT_TRUE(r.ok()) << "scenario " << sc << ": " << r.failure;
    sim::Executor exec(cp);
    auto rep = exec.execute(*r.plan);
    EXPECT_TRUE(rep.feasible) << "scenario " << sc << ": " << rep.failure;
    // Admissibility: the realized cost can never undercut the lower bound.
    EXPECT_GE(rep.actual_cost + 1e-6, r.plan->cost_lb) << "scenario " << sc;
  }
}

TEST(PlanInvariants, ClientDemandIsMet) {
  auto inst = domains::media::small();
  auto cp = model::compile(inst->problem, domains::media::scenario('C'));
  PlanResult r = solve(cp, PlannerOptions::Mode::Leveled);
  ASSERT_TRUE(r.ok());
  sim::Executor exec(cp);
  auto rep = exec.execute(*r.plan);
  ASSERT_TRUE(rep.feasible);
  // Find ibw(M @ client) in the final state.
  bool found = false;
  for (const auto& [var, val] : rep.final_vars) {
    const model::VarKey& k = cp.vars.key(var);
    if (k.kind == model::VarKind::IfaceProp && cp.iface_names[k.a] == "M" &&
        NodeId(k.b) == inst->client) {
      EXPECT_GE(val, 90.0 - 1e-6);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace sekitei
