// Microbenchmarks (google-benchmark) for the planner's hot paths: expression
// evaluation, interval evaluation, plan-tail replay, problem leveling, and
// the PLRG/SLRG construction.  These guard the constant factors behind
// Table 2's planning-time column.
//
// The BM_Trace* group guards the observability layer's idle cost: with the
// instrumentation compiled in but no collector installed, a span or counter
// must stay in the low-nanosecond range so end-to-end planning keeps well
// under the 2% overhead budget (compare BM_EndToEndPlanSmall against
// BM_EndToEndPlanSmallTraced for the *enabled* cost).
#include <benchmark/benchmark.h>

#include "bench_json.hpp"
#include "core/planner.hpp"
#include "core/plrg.hpp"
#include "core/replay.hpp"
#include "core/slrg.hpp"
#include "domains/media.hpp"
#include "expr/parser.hpp"
#include "expr/program.hpp"
#include "model/compile.hpp"
#include "support/trace.hpp"

namespace {

using namespace sekitei;

expr::Program compile_expr(const std::string& src) {
  std::map<std::string, std::uint32_t> slots;
  auto resolve = [&](const expr::RoleRef& r) -> std::uint32_t {
    auto k = r.str();
    auto it = slots.find(k);
    if (it != slots.end()) return it->second;
    const std::uint32_t s = static_cast<std::uint32_t>(slots.size());
    slots.emplace(k, s);
    return s;
  };
  auto ast = expr::parse_expr_string(src);
  return expr::Program::compile(*ast, resolve);
}

void BM_ExprScalarEval(benchmark::State& state) {
  expr::Program p = compile_expr("min(M.ibw, link.lbw) + (T.ibw + I.ibw) / 5 - Z.ibw / 10");
  const double slots[] = {100, 70, 63, 27, 31.5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.eval(slots));
  }
}
BENCHMARK(BM_ExprScalarEval);

void BM_ExprIntervalEval(benchmark::State& state) {
  expr::Program p = compile_expr("min(M.ibw, link.lbw) + (T.ibw + I.ibw) / 5 - Z.ibw / 10");
  const Interval slots[] = {{90, 100, true}, {0, 70}, {63, 70, true}, {27, 30, true},
                            {31.5, 35, true}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.eval_interval(slots));
  }
}
BENCHMARK(BM_ExprIntervalEval);

void BM_TableEval(benchmark::State& state) {
  expr::Program p = compile_expr("table(M.ibw; 0:0, 40:2, 80:6, 120:14, 200:30)");
  double x = 0;
  for (auto _ : state) {
    const double slots[] = {x};
    benchmark::DoNotOptimize(p.eval(slots));
    x = x < 200 ? x + 1 : 0;
  }
}
BENCHMARK(BM_TableEval);

void BM_CompileTiny(benchmark::State& state) {
  auto inst = domains::media::tiny();
  const auto scenario = domains::media::scenario('C');
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::compile(inst->problem, scenario));
  }
}
BENCHMARK(BM_CompileTiny);

void BM_CompileLarge(benchmark::State& state) {
  auto inst = domains::media::large();
  const auto scenario = domains::media::scenario(static_cast<char>('B' + state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::compile(inst->problem, scenario));
  }
  state.SetLabel(std::string("scenario ") + static_cast<char>('B' + state.range(0)));
}
BENCHMARK(BM_CompileLarge)->DenseRange(0, 3);

void BM_ReplayPlanTail(benchmark::State& state) {
  auto inst = domains::media::small();
  auto cp = model::compile(inst->problem, domains::media::scenario('C'));
  core::Sekitei planner(cp);
  auto r = planner.plan();
  if (!r.ok()) {
    state.SkipWithError("no plan");
    return;
  }
  core::Replayer replayer(cp);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        replayer.replay(r.plan->steps, /*from_init=*/true, core::ReplayMode::Optimistic));
  }
}
BENCHMARK(BM_ReplayPlanTail);

void BM_PlrgBuild(benchmark::State& state) {
  auto inst = domains::media::large();
  auto cp = model::compile(inst->problem, domains::media::scenario('C'));
  const core::CostFn cost = [&cp](ActionId a) { return cp.actions[a.index()].cost_lb; };
  for (auto _ : state) {
    core::Plrg plrg(cp, cost);
    plrg.build(cp.goal_prop);
    benchmark::DoNotOptimize(plrg.cost(cp.goal_prop));
  }
}
BENCHMARK(BM_PlrgBuild);

void BM_EndToEndPlanSmall(benchmark::State& state) {
  auto inst = domains::media::small();
  const auto scenario = domains::media::scenario('C');
  for (auto _ : state) {
    auto cp = model::compile(inst->problem, scenario);
    core::Sekitei planner(cp);
    auto r = planner.plan();
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_EndToEndPlanSmall)->Unit(benchmark::kMillisecond);

// ---- observability-layer overhead guards ------------------------------

void BM_TraceSpanNoCollector(benchmark::State& state) {
  // The idle fast path: one relaxed load + branch per span end-to-end.
  for (auto _ : state) {
    trace::Span span("bench.noop");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_TraceSpanNoCollector);

void BM_TraceCounterNoCollector(benchmark::State& state) {
  double x = 0;
  for (auto _ : state) {
    trace::counter("bench.noop", x);
    x += 1;
  }
}
BENCHMARK(BM_TraceCounterNoCollector);

void BM_TraceSpanWithCollector(benchmark::State& state) {
  trace::Collector collector;
  trace::install(&collector);
  for (auto _ : state) {
    trace::Span span("bench.noop");
    benchmark::DoNotOptimize(&span);
  }
  trace::uninstall();
  state.SetLabel(std::to_string(collector.event_count()) + " events recorded");
}
BENCHMARK(BM_TraceSpanWithCollector);

void BM_EndToEndPlanSmallTraced(benchmark::State& state) {
  // Same workload as BM_EndToEndPlanSmall but with a live collector; the
  // difference between the two is the *enabled* tracing cost.
  auto inst = domains::media::small();
  const auto scenario = domains::media::scenario('C');
  trace::Collector collector;
  trace::install(&collector);
  for (auto _ : state) {
    auto cp = model::compile(inst->problem, scenario);
    core::Sekitei planner(cp);
    auto r = planner.plan();
    benchmark::DoNotOptimize(r.ok());
  }
  trace::uninstall();
}
BENCHMARK(BM_EndToEndPlanSmallTraced)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // One machine-readable planner-run record for the trajectory, matching
  // the schema the table/figure benches emit.
  auto inst = sekitei::domains::media::small();
  auto cp = sekitei::model::compile(inst->problem, sekitei::domains::media::scenario('C'));
  sekitei::core::Sekitei planner(cp);
  auto r = planner.plan();
  sekitei::benchjson::emit("micro",
                           {sekitei::benchjson::kv("net", "Small"),
                            sekitei::benchjson::kv("scenario", "C"),
                            sekitei::benchjson::kv("plan_found", r.ok())},
                           &r.stats);
  return 0;
}
