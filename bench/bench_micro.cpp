// Microbenchmarks (google-benchmark) for the planner's hot paths: expression
// evaluation, interval evaluation, plan-tail replay, problem leveling, and
// the PLRG/SLRG construction.  These guard the constant factors behind
// Table 2's planning-time column.
#include <benchmark/benchmark.h>

#include "core/planner.hpp"
#include "core/plrg.hpp"
#include "core/replay.hpp"
#include "core/slrg.hpp"
#include "domains/media.hpp"
#include "expr/parser.hpp"
#include "expr/program.hpp"
#include "model/compile.hpp"

namespace {

using namespace sekitei;

expr::Program compile_expr(const std::string& src) {
  std::map<std::string, std::uint32_t> slots;
  auto resolve = [&](const expr::RoleRef& r) -> std::uint32_t {
    auto k = r.str();
    auto it = slots.find(k);
    if (it != slots.end()) return it->second;
    const std::uint32_t s = static_cast<std::uint32_t>(slots.size());
    slots.emplace(k, s);
    return s;
  };
  auto ast = expr::parse_expr_string(src);
  return expr::Program::compile(*ast, resolve);
}

void BM_ExprScalarEval(benchmark::State& state) {
  expr::Program p = compile_expr("min(M.ibw, link.lbw) + (T.ibw + I.ibw) / 5 - Z.ibw / 10");
  const double slots[] = {100, 70, 63, 27, 31.5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.eval(slots));
  }
}
BENCHMARK(BM_ExprScalarEval);

void BM_ExprIntervalEval(benchmark::State& state) {
  expr::Program p = compile_expr("min(M.ibw, link.lbw) + (T.ibw + I.ibw) / 5 - Z.ibw / 10");
  const Interval slots[] = {{90, 100, true}, {0, 70}, {63, 70, true}, {27, 30, true},
                            {31.5, 35, true}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.eval_interval(slots));
  }
}
BENCHMARK(BM_ExprIntervalEval);

void BM_TableEval(benchmark::State& state) {
  expr::Program p = compile_expr("table(M.ibw; 0:0, 40:2, 80:6, 120:14, 200:30)");
  double x = 0;
  for (auto _ : state) {
    const double slots[] = {x};
    benchmark::DoNotOptimize(p.eval(slots));
    x = x < 200 ? x + 1 : 0;
  }
}
BENCHMARK(BM_TableEval);

void BM_CompileTiny(benchmark::State& state) {
  auto inst = domains::media::tiny();
  const auto scenario = domains::media::scenario('C');
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::compile(inst->problem, scenario));
  }
}
BENCHMARK(BM_CompileTiny);

void BM_CompileLarge(benchmark::State& state) {
  auto inst = domains::media::large();
  const auto scenario = domains::media::scenario(static_cast<char>('B' + state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::compile(inst->problem, scenario));
  }
  state.SetLabel(std::string("scenario ") + static_cast<char>('B' + state.range(0)));
}
BENCHMARK(BM_CompileLarge)->DenseRange(0, 3);

void BM_ReplayPlanTail(benchmark::State& state) {
  auto inst = domains::media::small();
  auto cp = model::compile(inst->problem, domains::media::scenario('C'));
  core::Sekitei planner(cp);
  auto r = planner.plan();
  if (!r.ok()) {
    state.SkipWithError("no plan");
    return;
  }
  core::Replayer replayer(cp);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        replayer.replay(r.plan->steps, /*from_init=*/true, core::ReplayMode::Optimistic));
  }
}
BENCHMARK(BM_ReplayPlanTail);

void BM_PlrgBuild(benchmark::State& state) {
  auto inst = domains::media::large();
  auto cp = model::compile(inst->problem, domains::media::scenario('C'));
  const core::CostFn cost = [&cp](ActionId a) { return cp.actions[a.index()].cost_lb; };
  for (auto _ : state) {
    core::Plrg plrg(cp, cost);
    plrg.build(cp.goal_prop);
    benchmark::DoNotOptimize(plrg.cost(cp.goal_prop));
  }
}
BENCHMARK(BM_PlrgBuild);

void BM_EndToEndPlanSmall(benchmark::State& state) {
  auto inst = domains::media::small();
  const auto scenario = domains::media::scenario('C');
  for (auto _ : state) {
    auto cp = model::compile(inst->problem, scenario);
    core::Sekitei planner(cp);
    auto r = planner.plan();
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_EndToEndPlanSmall)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
