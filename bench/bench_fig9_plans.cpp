// Reproduces Fig. 9: the suboptimal and optimal plans for the Small network.
//
// Scenario B (a single 100 cutpoint) yields the 10-action plan that forwards
// the raw M stream over the LAN links (reserving 100 units there); scenarios
// C/D/E yield the 13-action plan that splits at the server and reserves only
// Z + I = 65 units of LAN bandwidth.
#include <cstdio>

#include "bench_json.hpp"
#include "core/planner.hpp"
#include "domains/media.hpp"
#include "model/compile.hpp"
#include "sim/executor.hpp"

namespace {

using namespace sekitei;

void run(char sc, const char* label) {
  auto inst = domains::media::small();
  auto cp = model::compile(inst->problem, domains::media::scenario(sc));
  core::Sekitei planner(cp);
  sim::Executor exec(cp);
  auto r = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
  if (!r.ok()) {
    std::printf("%s: no plan (%s)\n", label, r.failure.c_str());
    return;
  }
  auto rep = exec.execute(*r.plan);
  std::printf("%s — %zu actions, cost lower bound %.2f, realized cost %.2f,\n"
              "reserved LAN bandwidth %.1f, reserved WAN bandwidth %.1f\n",
              label, r.plan->size(), r.plan->cost_lb, rep.actual_cost,
              rep.max_reserved(net::LinkClass::Lan), rep.max_reserved(net::LinkClass::Wan));
  const char scenario[2] = {sc, '\0'};
  benchjson::emit("fig9_plans",
                  {benchjson::kv("scenario", scenario),
                   benchjson::kv("cost_lb", r.plan->cost_lb),
                   benchjson::kv("plan_actions", r.plan->size()),
                   benchjson::kv("reserved_lan", rep.max_reserved(net::LinkClass::Lan))},
                  &r.stats);
  std::printf("%s\n", r.plan->str(cp).c_str());
}

}  // namespace

int main() {
  std::printf("Fig. 9: suboptimal vs optimal plans for the Small network\n\n");
  run('B', "scenario B (suboptimal: forwards the raw M stream)");
  run('C', "scenario C (optimal: splits at the server)");
  std::printf("paper reference: 10 actions / cost 72 / LAN 100  vs  13 actions / cost 63 /\n"
              "LAN 65; the ideal (reversible-function) deployment would need only\n"
              "27 + 31.5 = 58.5 LAN units — see bench_level_granularity for that gap.\n");
  return 0;
}
