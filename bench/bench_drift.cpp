// Drift repair vs full replan, wall-clock (the service-mode counterpart of
// bench_repair's cost comparison): solve the 93-node transit-stub Large
// network, fail the direct stub-stub WAN edge the plan streams across, and
// time the two answers —
//
//   repair   survivors walk + residual deduction + repair compile + search
//            with reconnect/migrate discounts (what the service's repair
//            mode runs per request),
//   replan   fresh compile + search on the bare damaged network (the
//            degradation ladder's FullReplan rung).
//
// The repair problem is mostly solved before the search starts, so its
// median must sit strictly below the replan median; the "driftload" bench
// record's `speedup` (replan p50 / repair p50) is pinned by the perf gate.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "core/planner.hpp"
#include "domains/media.hpp"
#include "model/compile.hpp"
#include "repair/repair.hpp"
#include "sim/executor.hpp"
#include "support/timer.hpp"

namespace {

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main() {
  using namespace sekitei;

  auto inst = domains::media::large();
  const spec::LevelScenario scen = domains::media::scenario('C');
  auto cp = model::compile(inst->problem, scen);
  core::Sekitei planner(cp);
  sim::Executor exec(cp);
  auto original = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
  if (!original.ok()) {
    std::printf("no original plan: %s\n", original.failure.c_str());
    return 1;
  }
  const auto rep = exec.execute(*original.plan);

  // The drift event: fail the first WAN link the plan streams across.  The
  // transit-stub topology keeps a longer alternate route through the transit
  // domains, so every placement survives and the repair only re-routes the
  // cut crossings — the survivor-heavy case the repair mode exists for —
  // while the replan re-derives placements and routes from nothing.
  repair::Damage dmg;
  for (const ActionId a : original.plan->steps) {
    const model::GroundAction& act = cp.actions[a.index()];
    if (act.kind != model::ActionKind::Cross) continue;
    if (inst->net.link(act.link).cls == net::LinkClass::Wan) {
      dmg.failed_links.push_back(act.link);
      break;
    }
  }
  if (dmg.empty()) {
    std::printf("plan crosses no WAN link\n");
    return 1;
  }

  constexpr int kRepeats = 9;
  std::vector<double> repair_ms, replan_ms;
  double repair_cost = 0.0, replan_cost = 0.0;
  std::size_t survivor_count = 0;
  core::PlannerStats repair_stats;
  for (int i = 0; i < kRepeats; ++i) {
    {
      Stopwatch w;
      auto survivors = repair::compute_survivors(cp, *original.plan, rep.choices, dmg);
      net::Network damaged = repair::damaged_copy(inst->net, dmg, &survivors.residual);
      model::CppProblem rp = repair::repair_problem(inst->problem, damaged, survivors);
      auto rcp = model::compile(rp, scen);
      repair::apply_adaptation_costs(rcp, survivors, {});
      core::Sekitei rplanner(rcp);
      sim::Executor rexec(rcp);
      auto rr = rplanner.plan([&](const core::Plan& p) { return rexec.execute(p).feasible; });
      repair_ms.push_back(w.elapsed_ms());
      if (!rr.ok()) {
        std::printf("repair found no plan: %s\n", rr.failure.c_str());
        return 1;
      }
      repair_cost = rr.plan->cost_lb;
      survivor_count = survivors.placements.size();
      repair_stats = rr.stats;
    }
    {
      Stopwatch w;
      net::Network bare = repair::damaged_copy(inst->net, dmg);
      model::CppProblem sp = inst->problem;
      sp.network = &bare;
      auto scp = model::compile(sp, scen);
      core::Sekitei splanner(scp);
      sim::Executor sexec(scp);
      auto sr = splanner.plan([&](const core::Plan& p) { return sexec.execute(p).feasible; });
      replan_ms.push_back(w.elapsed_ms());
      if (!sr.ok()) {
        std::printf("replan found no plan: %s\n", sr.failure.c_str());
        return 1;
      }
      replan_cost = sr.plan->cost_lb;
    }
  }

  const double repair_p50 = median(repair_ms);
  const double replan_p50 = median(replan_ms);
  std::printf("WAN-link drift on Large/C: %zu survivors kept\n", survivor_count);
  std::printf("  repair  p50 %8.3f ms  (cost lb %.2f)\n", repair_p50, repair_cost);
  std::printf("  replan  p50 %8.3f ms  (cost lb %.2f)\n", replan_p50, replan_cost);
  std::printf("  speedup %.2fx\n", repair_p50 > 0.0 ? replan_p50 / repair_p50 : 0.0);
  benchjson::emit("driftload",
                  {benchjson::kv("family", "large-wanfail"),
                   benchjson::kv("repeats", static_cast<std::uint64_t>(kRepeats)),
                   benchjson::kv("survivors", static_cast<std::uint64_t>(survivor_count)),
                   benchjson::kv("repair_p50_ms", repair_p50),
                   benchjson::kv("replan_p50_ms", replan_p50),
                   benchjson::kv("speedup", repair_p50 > 0.0 ? replan_p50 / repair_p50 : 0.0),
                   benchjson::kv("repair_cost_lb", repair_cost),
                   benchjson::kv("replan_cost_lb", replan_cost)},
                  &repair_stats);
  return 0;
}
