// Throughput of the concurrent planning service (src/service): a fixed batch
// of media-deployment requests is pushed through PlanningEngine at 1/2/4/8
// workers, reporting requests/sec, the speedup over the 1-worker run, and
// the compiled-problem cache hit rate.  A second sweep isolates the cache:
// the same single-worker batch with caching disabled, cold, and pre-warmed.
//
// Speedup across workers needs real cores: on a single-CPU machine the
// worker sweep degenerates to ~1x (the planner is CPU-bound) while the cache
// sweep still shows its full effect.  `cpus` in the JSON records which case
// a given log came from.
//
// Machine-readable lines (grep '^{"bench"'):
//   {"bench":"throughput","workers":4,"requests":24,...,"speedup_vs_1w":...}
//   {"bench":"throughput_cache","cache":"warm",...}
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "domains/media.hpp"
#include "service/engine.hpp"
#include "support/timer.hpp"

namespace {

using namespace sekitei;

std::shared_ptr<const model::LoadedProblem> load_instance(
    std::unique_ptr<domains::media::Instance> inst, char scenario) {
  return service::make_loaded(std::move(inst->domain), std::move(inst->net),
                              std::move(inst->problem), domains::media::scenario(scenario));
}

struct Batch {
  std::vector<std::shared_ptr<const model::LoadedProblem>> problems;
  std::size_t repeat = 4;  // distinct problems x repeat = requests per run

  [[nodiscard]] std::size_t size() const { return problems.size() * repeat; }
};

struct RunResult {
  double wall_ms = 0.0;
  double rps = 0.0;
  std::size_t solved = 0;
  service::CompiledProblemCache::Stats cache;
};

RunResult run_batch(const Batch& batch, service::PlanningEngine& engine) {
  RunResult out;
  Stopwatch wall;
  std::vector<service::PlanningEngine::Ticket> tickets;
  tickets.reserve(batch.size());
  for (std::size_t k = 0; k < batch.repeat; ++k) {
    for (std::size_t p = 0; p < batch.problems.size(); ++p) {
      service::PlanRequest req;
      req.id = std::to_string(p) + "#" + std::to_string(k);
      req.problem = batch.problems[p];
      tickets.push_back(engine.submit(std::move(req)));
    }
  }
  for (auto& ticket : tickets) {
    if (ticket.response.get().ok()) ++out.solved;
  }
  out.wall_ms = wall.elapsed_ms();
  out.rps = out.wall_ms > 0.0 ? 1000.0 * double(batch.size()) / out.wall_ms : 0.0;
  out.cache = engine.cache_stats();
  return out;
}

}  // namespace

int main() {
  using namespace sekitei;
  namespace media = domains::media;

  Batch batch;
  for (char sc : {'B', 'C', 'D', 'E'}) batch.problems.push_back(load_instance(media::tiny(), sc));
  for (char sc : {'B', 'C'}) batch.problems.push_back(load_instance(media::small(), sc));

  const unsigned cpus = std::thread::hardware_concurrency();
  std::printf("service throughput: %zu distinct problems x %zu = %zu requests, %u cpus\n\n",
              batch.problems.size(), batch.repeat, batch.size(), cpus);

  std::printf("  workers |   wall ms |    req/s | speedup | cache hit rate\n");
  std::printf("  --------+-----------+----------+---------+---------------\n");
  double rps_1w = 0.0;
  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    service::PlanningEngine engine({.workers = workers});
    const RunResult r = run_batch(batch, engine);
    if (workers == 1) rps_1w = r.rps;
    const double speedup = rps_1w > 0.0 ? r.rps / rps_1w : 0.0;
    std::printf("  %7zu | %9.1f | %8.2f | %6.2fx | %5.2f (%llu/%llu)\n", workers, r.wall_ms,
                r.rps, speedup, r.cache.hit_rate(), (unsigned long long)r.cache.hits,
                (unsigned long long)(r.cache.hits + r.cache.misses));
    benchjson::emit("throughput",
                    {benchjson::kv("workers", std::uint64_t(workers)),
                     benchjson::kv("requests", std::uint64_t(batch.size())),
                     benchjson::kv("solved", std::uint64_t(r.solved)),
                     benchjson::kv("cpus", std::uint64_t(cpus)),
                     benchjson::kv("wall_ms", r.wall_ms), benchjson::kv("rps", r.rps),
                     benchjson::kv("speedup_vs_1w", speedup),
                     benchjson::kv("cache_hits", r.cache.hits),
                     benchjson::kv("cache_misses", r.cache.misses),
                     benchjson::kv("cache_hit_rate", r.cache.hit_rate())},
                    nullptr);
  }

  // Cache ablation at one worker: disabled recompiles every request; cold
  // compiles each distinct problem once; warm never compiles.  Uses a
  // tiny-only batch, where grounding+leveling is a meaningful share of the
  // request (on Small+ the search dominates and the cache fades into noise).
  Batch cache_batch;
  for (char sc : {'B', 'C', 'D', 'E'}) {
    cache_batch.problems.push_back(load_instance(media::tiny(), sc));
  }
  cache_batch.repeat = 16;
  std::printf("\n  cache sweep: %zu tiny requests at 1 worker\n", cache_batch.size());
  std::printf("  cache    |   wall ms |    req/s | speedup vs disabled\n");
  std::printf("  ---------+-----------+----------+--------------------\n");
  double rps_disabled = 0.0;
  for (const char* mode : {"disabled", "cold", "warm"}) {
    service::PlanningEngine engine(
        {.workers = 1, .cache_capacity = std::string(mode) == "disabled" ? 0u : 128u});
    if (std::string(mode) == "warm") (void)run_batch(cache_batch, engine);  // prime
    const RunResult r = run_batch(cache_batch, engine);
    if (std::string(mode) == "disabled") rps_disabled = r.rps;
    const double speedup = rps_disabled > 0.0 ? r.rps / rps_disabled : 0.0;
    std::printf("  %-8s | %9.1f | %8.2f | %6.2fx\n", mode, r.wall_ms, r.rps, speedup);
    benchjson::emit("throughput_cache",
                    {benchjson::kv("cache", mode),
                     benchjson::kv("requests", std::uint64_t(cache_batch.size())),
                     benchjson::kv("wall_ms", r.wall_ms), benchjson::kv("rps", r.rps),
                     benchjson::kv("speedup_vs_disabled", speedup),
                     benchjson::kv("cache_hits", r.cache.hits),
                     benchjson::kv("cache_misses", r.cache.misses)},
                    nullptr);
  }
  return 0;
}
