// Reproduces Table 2 ("Scalability evaluation") of the paper: for each of
// the three networks (Tiny / Small / Large) and each level scenario B-E,
// the quality of the solution (cost lower bound, plan length, reserved LAN
// bandwidth) and the work done by the planner (leveled action count, graph
// sizes, planning time).  Scenario A (the greedy original Sekitei) is also
// run on every network to demonstrate that it finds no plan.
//
// The time column follows the paper's two-part split (column 9): regression
// graph construction (PLRG build + SLRG goal seeding) vs the RG search.
// Times are wall-clock on the current machine; the paper's were measured in
// 2004 — compare shapes, not milliseconds (see EXPERIMENTS.md).
//
// Each row additionally emits one machine-readable JSON line (grep '^{"bench"').
#include <cstdio>
#include <memory>

#include "bench_json.hpp"
#include "core/planner.hpp"
#include "domains/media.hpp"
#include "model/compile.hpp"
#include "sim/executor.hpp"
#include "support/timer.hpp"

namespace {

using namespace sekitei;

void run_row(const char* net_name, const domains::media::Instance& inst, char sc_name,
             bool has_lan) {
  Stopwatch total;
  auto cp = model::compile(inst.problem, domains::media::scenario(sc_name));

  core::PlannerOptions opt;
  if (sc_name == 'A') opt.mode = core::PlannerOptions::Mode::Greedy;
  core::Sekitei planner(cp, opt);
  sim::Executor exec(cp);
  auto r = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
  const double total_ms = total.elapsed_ms();
  const char scenario[2] = {sc_name, '\0'};

  if (!r.ok()) {
    std::printf("  %c | %11s | %7s | %8s | %7llu | %6llu/%-6llu | %7llu | %8llu/%-8llu |"
                " %7.1f+%-7.1f (%.1f)\n",
                sc_name, "no plan", "-", "-", (unsigned long long)r.stats.total_actions,
                (unsigned long long)r.stats.plrg_props, (unsigned long long)r.stats.plrg_actions,
                (unsigned long long)r.stats.slrg_sets, (unsigned long long)r.stats.rg_nodes,
                (unsigned long long)r.stats.rg_open_left, r.stats.time_graph_ms,
                r.stats.time_search_ms, total_ms);
    benchjson::emit("table2",
                    {benchjson::kv("net", net_name), benchjson::kv("scenario", scenario),
                     benchjson::kv("plan_found", false), benchjson::kv("total_ms", total_ms)},
                    &r.stats);
    return;
  }
  auto rep = exec.execute(*r.plan);
  char lan_buf[32];
  const double lan = rep.feasible ? rep.max_reserved(net::LinkClass::Lan) : 0.0;
  if (has_lan && rep.feasible) {
    std::snprintf(lan_buf, sizeof lan_buf, "%.0f", lan);
  } else {
    std::snprintf(lan_buf, sizeof lan_buf, "N/A");
  }
  std::printf("  %c | %11.2f | %7zu | %8s | %7llu | %6llu/%-6llu | %7llu | %8llu/%-8llu |"
              " %7.1f+%-7.1f (%.1f)\n",
              sc_name, r.plan->cost_lb, r.plan->size(), lan_buf,
              (unsigned long long)r.stats.total_actions,
              (unsigned long long)r.stats.plrg_props, (unsigned long long)r.stats.plrg_actions,
              (unsigned long long)r.stats.slrg_sets, (unsigned long long)r.stats.rg_nodes,
              (unsigned long long)r.stats.rg_open_left, r.stats.time_graph_ms,
              r.stats.time_search_ms, total_ms);
  benchjson::emit("table2",
                  {benchjson::kv("net", net_name), benchjson::kv("scenario", scenario),
                   benchjson::kv("plan_found", true), benchjson::kv("cost_lb", r.plan->cost_lb),
                   benchjson::kv("plan_actions", r.plan->size()),
                   benchjson::kv("reserved_lan", has_lan && rep.feasible ? lan : 0.0),
                   benchjson::kv("total_ms", total_ms)},
                  &r.stats);
}

void run_network(const char* name, const domains::media::Instance& inst, bool has_lan) {
  std::printf("%s (%zu nodes, %zu links)\n", name, inst.net.node_count(),
              inst.net.link_count());
  for (char sc : {'A', 'B', 'C', 'D', 'E'}) run_row(name, inst, sc, has_lan);
}

}  // namespace

int main() {
  std::printf("Table 2: Scalability evaluation (reproduction)\n");
  std::printf("columns: scenario | cost lower bound | actions in plan | reserved LAN bw |"
              " total actions | PLRG p/a | SLRG sets | RG nodes/queued |"
              " time ms graph+search (total)\n\n");

  run_network("Tiny", *domains::media::tiny(), /*has_lan=*/false);
  std::printf("\n");
  run_network("Small", *domains::media::small(), /*has_lan=*/true);
  std::printf("\n");
  run_network("Large", *domains::media::large(), /*has_lan=*/true);

  std::printf("\npaper reference (Table 2):\n");
  std::printf("  Tiny : B 7/7, C 42/7, D 42/7, E 42/7 (lower bound/actions); A finds no plan\n");
  std::printf("  Small: B 10/10 LAN 100, C 63/13 LAN 65, D 63/13 LAN 65, E 63/13 LAN 65\n");
  std::printf("  Large: B 11/11 LAN 100, C 63/13 LAN 65, D 63/13 LAN 65, E 63/13 LAN 65\n");
  return 0;
}
