// Reproduces Fig. 10: the 93-node transit-stub network, plus generator
// statistics across seeds and sizes (our stand-in for the GeorgiaTech ITM
// tool [18]).  Also verifies the property the paper highlights: "Most of the
// nodes of this network do not participate in the plan, but cannot be
// statically pruned."
#include <cstdio>

#include "core/planner.hpp"
#include "domains/media.hpp"
#include "model/compile.hpp"
#include "net/export.hpp"
#include "net/generator.hpp"
#include "net/paths.hpp"
#include "sim/executor.hpp"

int main() {
  using namespace sekitei;

  std::printf("Transit-stub generator statistics (GT-ITM stand-in)\n");
  std::printf("%6s | %6s | %6s | %9s | %9s | %10s\n", "seed", "nodes", "links", "LAN links",
              "WAN links", "connected");
  for (std::uint64_t seed : {7u, 13u, 42u, 99u}) {
    net::Network n = net::transit_stub({}, seed);
    std::size_t lan = 0, wan = 0;
    for (LinkId l : n.link_ids()) {
      (n.link(l).cls == net::LinkClass::Lan ? lan : wan) += 1;
    }
    std::printf("%6llu | %6zu | %6zu | %9zu | %9zu | %10s\n", (unsigned long long)seed,
                n.node_count(), n.link_count(), lan, wan, n.connected() ? "yes" : "NO");
  }

  std::printf("\nFig. 10 instance (seed 13): plan participation\n");
  auto inst = domains::media::large();
  auto cp = model::compile(inst->problem, domains::media::scenario('C'));
  core::Sekitei planner(cp);
  sim::Executor exec(cp);
  auto r = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
  if (r.ok()) {
    std::vector<bool> used(inst->net.node_count(), false);
    for (ActionId a : r.plan->steps) {
      const model::GroundAction& act = cp.actions[a.index()];
      used[act.node.index()] = true;
      if (act.kind == model::ActionKind::Cross) used[act.node2.index()] = true;
    }
    std::size_t participating = 0;
    for (bool u : used) participating += u;
    std::printf("nodes participating in the plan: %zu of %zu (%.0f%% are idle bystanders,\n"
                "yet %zu ground actions were generated for them — no static pruning)\n",
                participating, inst->net.node_count(),
                100.0 * (inst->net.node_count() - participating) / inst->net.node_count(),
                cp.actions.size());
  }

  std::printf("\nhop structure between server and client (relevant path shape):\n");
  auto path = net::fewest_hops(inst->net, inst->server, inst->client);
  if (path) {
    std::printf("  %zu hops:", path->links.size());
    for (std::size_t i = 0; i < path->links.size(); ++i) {
      std::printf(" %s", net::link_class_name(inst->net.link(path->links[i]).cls));
    }
    std::printf("  (the Small network's LAN-LAN-WAN-LAN shape)\n");
  }

  std::printf("\nGraphviz rendering written to large_topology.dot (render with:\n"
              "  neato -Tpdf large_topology.dot -o large_topology.pdf)\n");
  FILE* f = std::fopen("large_topology.dot", "w");
  if (f != nullptr) {
    const std::string dot = net::to_dot(inst->net, "large");
    std::fwrite(dot.data(), 1, dot.size(), f);
    std::fclose(f);
  }
  return 0;
}
