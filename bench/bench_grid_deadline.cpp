// Grid workflow deadline sweep (the Section 1 claim: "the modified Sekitei
// planner is capable of deploying the task graph scenario ... in a way that
// minimizes resource consumption while meeting specified deadline goals").
//
// Sweeps the portal deadline and reports, per deadline: feasibility, which
// replica the plan fetches, the delivered result volume, the realized
// completion latency and the plan cost.  The replica flip and the
// infeasibility frontier are the series of interest.
#include <cstdio>

#include "bench_json.hpp"
#include "core/planner.hpp"
#include "domains/grid.hpp"
#include "model/compile.hpp"
#include "sim/executor.hpp"

int main() {
  using namespace sekitei;

  std::printf("Grid workflow: deadline vs deployment shape\n");
  std::printf("%9s | %8s | %8s | %9s | %9s | %9s\n", "deadline", "plan", "replica",
              "Out.size", "Out.lat", "cost lb");

  for (double deadline : {10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0, 50.0, 60.0, 80.0}) {
    domains::grid::Params p;
    p.deadline = deadline;
    auto inst = domains::grid::two_cluster(p);
    auto cp = model::compile(inst->problem, domains::grid::scenario(p));
    core::Sekitei planner(cp);
    sim::Executor exec(cp);
    auto r = planner.plan([&](const core::Plan& pl) { return exec.execute(pl).feasible; });
    benchjson::emit("grid_deadline",
                    {benchjson::kv("deadline", deadline), benchjson::kv("plan_found", r.ok()),
                     benchjson::kv("cost_lb", r.ok() ? r.plan->cost_lb : 0.0),
                     benchjson::kv("plan_actions", r.ok() ? r.plan->size() : 0)},
                    &r.stats);
    if (!r.ok()) {
      std::printf("%9.0f | %8s | %8s | %9s | %9s | %9s\n", deadline, "none", "-", "-", "-", "-");
      continue;
    }
    bool far = false, near = false;
    for (ActionId a : r.plan->steps) {
      const model::GroundAction& act = cp.actions[a.index()];
      if (act.kind == model::ActionKind::Cross && cp.iface_names[act.spec_index] == "Raw") {
        far = far || act.node == inst->storage_far;
        near = near || act.node == inst->storage_near;
      }
    }
    auto rep = exec.execute(*r.plan);
    double out_size = 0, out_lat = 0;
    for (const auto& [var, val] : rep.final_vars) {
      const model::VarKey& k = cp.vars.key(var);
      if (k.kind != model::VarKind::IfaceProp || cp.iface_names[k.a] != "Out" ||
          NodeId(k.b) != inst->portal) {
        continue;
      }
      const std::string& prop = cp.names.str(NameId(k.c));
      if (prop == "size") out_size = val;
      if (prop == "lat") out_lat = val;
    }
    std::printf("%9.0f | %8zu | %8s | %9.2f | %9.2f | %9.2f\n", deadline, r.plan->size(),
                far ? "far" : (near ? "near" : "?"), out_size, out_lat, r.plan->cost_lb);
  }

  std::printf("\nexpected shape: infeasible below the fast replica's minimum completion\n"
              "time; the fast-but-remote replica wins at tight deadlines; the cheap\n"
              "near replica takes over once the deadline tolerates its slow link; the\n"
              "delivered volume never shrinks as the deadline loosens.\n");
  return 0;
}
