// Grid workflow deadline sweep (the Section 1 claim: "the modified Sekitei
// planner is capable of deploying the task graph scenario ... in a way that
// minimizes resource consumption while meeting specified deadline goals").
//
// Sweeps the portal deadline and reports, per deadline: feasibility, which
// replica the plan fetches, the delivered result volume, the realized
// completion latency and the plan cost.  The replica flip and the
// infeasibility frontier are the series of interest.
//
// The "anytime" column re-runs the search with a stop fired after a fixed
// number of RG expansions and reports the incumbent cost the cut-short
// search would have returned — how close graceful degradation gets to the
// optimum on a tiny work budget.
#include <cstdio>

#include "bench_json.hpp"
#include "core/planner.hpp"
#include "domains/grid.hpp"
#include "model/compile.hpp"
#include "sim/executor.hpp"
#include "support/stop_token.hpp"

namespace {

// Incumbent cost of a search stopped after `budget` RG expansions; negative
// when the stopped search held no incumbent (or finished optimally first).
double anytime_cost(const sekitei::model::CompiledProblem& cp, std::uint64_t budget) {
  using namespace sekitei;
  StopSource stop;
  core::PlannerOptions opt;
  opt.stop = stop.token();
  opt.progress_every = 1;  // poll every expansion: the budget is exact
  opt.progress = [&](const core::PlannerStats& s) {
    if (s.rg_expansions >= budget) stop.request_stop();
  };
  core::Sekitei planner(cp, opt);
  sim::Executor exec(cp);
  auto r = planner.plan([&](const core::Plan& pl) { return exec.execute(pl).feasible; });
  if (!r.ok()) return -1.0;
  return r.plan->cost_lb;
}

}  // namespace

int main() {
  using namespace sekitei;

  std::printf("Grid workflow: deadline vs deployment shape\n");
  std::printf("%9s | %8s | %8s | %9s | %9s | %9s | %9s\n", "deadline", "plan", "replica",
              "Out.size", "Out.lat", "cost lb", "anytime");

  for (double deadline : {10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0, 50.0, 60.0, 80.0}) {
    domains::grid::Params p;
    p.deadline = deadline;
    auto inst = domains::grid::two_cluster(p);
    auto cp = model::compile(inst->problem, domains::grid::scenario(p));
    core::Sekitei planner(cp);
    sim::Executor exec(cp);
    auto r = planner.plan([&](const core::Plan& pl) { return exec.execute(pl).feasible; });
    const double any_cost = anytime_cost(cp, /*budget=*/40);
    benchjson::emit("grid_deadline",
                    {benchjson::kv("deadline", deadline), benchjson::kv("plan_found", r.ok()),
                     benchjson::kv("cost_lb", r.ok() ? r.plan->cost_lb : 0.0),
                     benchjson::kv("plan_actions", r.ok() ? r.plan->size() : 0),
                     benchjson::kv("anytime_cost", any_cost)},
                    &r.stats);
    if (!r.ok()) {
      std::printf("%9.0f | %8s | %8s | %9s | %9s | %9s | %9s\n", deadline, "none", "-", "-",
                  "-", "-", "-");
      continue;
    }
    bool far = false, near = false;
    for (ActionId a : r.plan->steps) {
      const model::GroundAction& act = cp.actions[a.index()];
      if (act.kind == model::ActionKind::Cross && cp.iface_names[act.spec_index] == "Raw") {
        far = far || act.node == inst->storage_far;
        near = near || act.node == inst->storage_near;
      }
    }
    auto rep = exec.execute(*r.plan);
    double out_size = 0, out_lat = 0;
    for (const auto& [var, val] : rep.final_vars) {
      const model::VarKey& k = cp.vars.key(var);
      if (k.kind != model::VarKind::IfaceProp || cp.iface_names[k.a] != "Out" ||
          NodeId(k.b) != inst->portal) {
        continue;
      }
      const std::string& prop = cp.names.str(NameId(k.c));
      if (prop == "size") out_size = val;
      if (prop == "lat") out_lat = val;
    }
    char any_buf[16];
    if (any_cost < 0.0) {
      std::snprintf(any_buf, sizeof any_buf, "%9s", "-");
    } else {
      std::snprintf(any_buf, sizeof any_buf, "%9.2f", any_cost);
    }
    std::printf("%9.0f | %8zu | %8s | %9.2f | %9.2f | %9.2f | %s\n", deadline, r.plan->size(),
                far ? "far" : (near ? "near" : "?"), out_size, out_lat, r.plan->cost_lb,
                any_buf);
  }

  std::printf("\nexpected shape: infeasible below the fast replica's minimum completion\n"
              "time; the fast-but-remote replica wins at tight deadlines; the cheap\n"
              "near replica takes over once the deadline tolerates its slow link; the\n"
              "delivered volume never shrinks as the deadline loosens.\n");
  return 0;
}
