// Fuzz-harness throughput: how many generated instances per second the
// differential battery sustains, split by how much of the battery runs.
//
// Three sweeps over the same fixed seed range:
//   * generate   render-only (no planning) — generator + parser cost floor
//   * solve      base leveled run only (all oracles off)
//   * battery    the full seven-oracle battery
//
// Machine-readable lines (grep '^{"bench"'):
//   {"bench":"fuzz","sweep":"battery","runs":32,"solved":...,
//    "runs_per_sec":...,"oracle_checks":...,"failing_runs":0,...}
//
// `failing_runs` doubles as a soundness assertion: a nonzero value in a
// bench log means an oracle disagreement slipped into a released build.
#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "model/textio.hpp"
#include "support/timer.hpp"
#include "testing/fuzzer.hpp"

namespace {

using namespace sekitei;

constexpr std::uint64_t kSeed = 1;
constexpr std::size_t kRuns = 32;

void sweep_generate() {
  Stopwatch wall;
  std::size_t total_lines = 0;
  for (std::size_t i = 0; i < kRuns; ++i) {
    const testing::GenInstance inst = testing::generate(kSeed + i);
    const auto lp = model::load_problem(inst.domain_text(), inst.problem_text());
    total_lines += inst.line_count() + lp->domain.component_count();
  }
  const double ms = wall.elapsed_ms();
  benchjson::emit("fuzz",
                  {benchjson::kv("sweep", "generate"),
                   benchjson::kv("runs", static_cast<std::uint64_t>(kRuns)),
                   benchjson::kv("total_lines", static_cast<std::uint64_t>(total_lines)),
                   benchjson::kv("wall_ms", ms),
                   benchjson::kv("runs_per_sec", 1000.0 * static_cast<double>(kRuns) / ms)},
                  nullptr);
}

void sweep(const char* name, const testing::OracleConfig& oracles) {
  testing::FuzzParams params;
  params.seed = kSeed;
  params.runs = kRuns;
  params.oracles = oracles;
  params.minimize_repros = false;
  params.out_dir = "/tmp/sekitei-bench-fuzz";

  Stopwatch wall;
  const testing::FuzzStats stats = testing::fuzz(params);
  const double ms = wall.elapsed_ms();
  benchjson::emit(
      "fuzz",
      {benchjson::kv("sweep", name),
       benchjson::kv("runs", static_cast<std::uint64_t>(stats.runs)),
       benchjson::kv("solved", static_cast<std::uint64_t>(stats.solved)),
       benchjson::kv("infeasible", static_cast<std::uint64_t>(stats.infeasible)),
       benchjson::kv("unknown", static_cast<std::uint64_t>(stats.unknown)),
       benchjson::kv("oracle_checks", static_cast<std::uint64_t>(stats.oracle_checks)),
       benchjson::kv("failing_runs", static_cast<std::uint64_t>(stats.failing_runs)),
       benchjson::kv("wall_ms", ms),
       benchjson::kv("runs_per_sec", 1000.0 * static_cast<double>(stats.runs) / ms)},
      nullptr);
  std::printf("%-10s %3zu runs in %8.1f ms (%5.1f runs/s, %zu checks, %zu failing)\n", name,
              stats.runs, ms, 1000.0 * static_cast<double>(stats.runs) / ms,
              stats.oracle_checks, stats.failing_runs);
}

}  // namespace

int main() {
  std::printf("fuzz-harness throughput, seeds %llu..%llu\n",
              (unsigned long long)kSeed, (unsigned long long)(kSeed + kRuns - 1));
  sweep_generate();

  testing::OracleConfig none;
  none.greedy = none.preflight = none.validator = false;
  none.permutation = none.widening = none.refinement = none.service = false;
  sweep("solve", none);

  sweep("battery", testing::OracleConfig{});
  return 0;
}
