// Second-backend comparison: the in-house CP branch-and-bound (src/cp)
// against the three-phase RG A* search, plus the CP-with-vs-without
// symmetry-breaking pair the perf gate pins.
//
//   star      bench_symmetry's hub-and-spoke family with K link-for-link
//             identical middles.  CP is run twice over the same compiled
//             problem (lex-leader symmetry breaking on / off); the medians'
//             ratio is the "cp.speedup" number the perf gate tracks — the
//             record carries the "speedup" key.
//   table2    Tiny scenarios B-E and Small scenario C re-solved by both
//             backends; each row asserts cost agreement and reports both
//             wall clocks.  These records deliberately carry NO "speedup"
//             key so the gate's max() only ever sees the star number.
//
// Each row emits one machine-readable JSON line (grep '^{"bench"').
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/symmetry.hpp"
#include "bench_json.hpp"
#include "core/planner.hpp"
#include "cp/search.hpp"
#include "domains/media.hpp"
#include "model/compile.hpp"
#include "model/textio.hpp"
#include "sim/executor.hpp"
#include "support/timer.hpp"

namespace {

using namespace sekitei;

/// Best-of-repeats: the two timed phases interleave per repeat, so taking
/// each side's quietest repeat cancels load spikes out of the ratio — the
/// pinned speedup stays stable where a median-of-sub-ms-samples does not.
double best(const std::vector<double>& v) {
  return v.empty() ? 0.0 : *std::min_element(v.begin(), v.end());
}

/// Hub-and-spoke drop-off: s -LAN- m_i -WAN- cl for K identical middles
/// (the same generator as bench_symmetry's star family).
std::string star_problem(int middles) {
  std::string text = "network {\n  node s { cpu 30; }\n";
  for (int i = 1; i <= middles; ++i) {
    text += "  node m" + std::to_string(i) + " { cpu 30; }\n";
  }
  text += "  node cl { cpu 30; }\n";
  for (int i = 1; i <= middles; ++i) {
    const std::string m = "m" + std::to_string(i);
    text += "  link s " + m + " lan { lbw 150; delay 1; }\n";
    text += "  link " + m + " cl wan { lbw 66; delay 10; }\n";
  }
  text +=
      "}\n"
      "problem {\n"
      "  stream M.ibw at s = [0, 200];\n"
      "  preplaced Server at s;\n"
      "  forbid Server;\n"
      "  restrict Client to cl;\n"
      "  goal Client at cl;\n"
      "}\n"
      // Three cutpoints per property (bench_symmetry uses two): the deeper
      // level grid lengthens both runs past the timer-noise floor, which is
      // what makes the pinned speedup stable run-to-run.
      "scenario {\n"
      "  levels M.ibw { 80, 90, 100 }\n"
      "  levels T.ibw { 56, 63, 70 }\n"
      "  levels I.ibw { 24, 27, 30 }\n"
      "  levels Z.ibw { 28, 31.5, 35 }\n"
      "}\n";
  return text;
}

/// CP solve with the simulator as the acceptance check, like the planner
/// facade wires it.
cp::Result solve_cp(const model::CompiledProblem& cp_model, bool symmetry) {
  sim::Executor exec(cp_model);
  cp::Options opt;
  opt.symmetry_breaking = symmetry;
  opt.validate = [&](std::span<const ActionId> steps, double) {
    core::Plan plan;
    plan.steps.assign(steps.begin(), steps.end());
    return exec.execute(plan).feasible;
  };
  return cp::solve(cp_model, opt);
}

int run_star(int middles, int repeats) {
  const auto star = model::load_problem(domains::media::domain_text(),
                                        star_problem(middles));
  std::vector<double> with_ms, without_ms;
  double with_cost = 0.0, without_cost = 0.0;
  cp::Stats with_stats, without_stats;
  for (int i = 0; i < repeats; ++i) {
    auto cp_model = model::compile(star->problem, star->scenario);
    analysis::attach_symmetry(cp_model);
    {
      Stopwatch w;
      const cp::Result r = solve_cp(cp_model, false);
      without_ms.push_back(w.elapsed_ms());
      if (!r.ok()) {
        std::printf("star without symmetry found no plan: %s\n", r.failure.c_str());
        return 1;
      }
      without_cost = r.cost;
      without_stats = r.stats;
    }
    {
      Stopwatch w;
      const cp::Result r = solve_cp(cp_model, true);
      with_ms.push_back(w.elapsed_ms());
      if (!r.ok()) {
        std::printf("star with symmetry found no plan: %s\n", r.failure.c_str());
        return 1;
      }
      with_cost = r.cost;
      with_stats = r.stats;
    }
  }
  if (std::abs(with_cost - without_cost) > 1e-9) {
    std::printf("star cost mismatch: with %.3f vs without %.3f\n", with_cost, without_cost);
    return 1;
  }
  const double p50_with = best(with_ms);
  const double p50_without = best(without_ms);
  const double speedup = p50_with > 0.0 ? p50_without / p50_with : 0.0;
  std::printf("star (K=%d middles): cost lb %.2f\n", middles, with_cost);
  std::printf("  cp without symmetry best %8.3f ms  (%llu branches)\n", p50_without,
              (unsigned long long)without_stats.branches);
  std::printf("  cp with    symmetry best %8.3f ms  (%llu branches, %llu pruned)\n",
              p50_with, (unsigned long long)with_stats.branches,
              (unsigned long long)with_stats.pruned_symmetry);
  std::printf("  speedup %.2fx\n", speedup);
  benchjson::emit("cp", {benchjson::kv("family", "star"),
                         benchjson::kv("middles", middles),
                         benchjson::kv("repeats", repeats),
                         benchjson::kv("without_best_ms", p50_without),
                         benchjson::kv("with_best_ms", p50_with),
                         benchjson::kv("without_branches", without_stats.branches),
                         benchjson::kv("with_branches", with_stats.branches),
                         benchjson::kv("pruned_symmetry", with_stats.pruned_symmetry),
                         benchjson::kv("speedup", speedup),
                         benchjson::kv("cost_lb", with_cost)},
                  nullptr);
  return 0;
}

int run_table2_row(const char* net_name, const domains::media::Instance& inst,
                   char sc_name) {
  auto cp_model = model::compile(inst.problem, domains::media::scenario(sc_name));
  const char scenario[2] = {sc_name, '\0'};

  Stopwatch rg_w;
  core::Sekitei planner(cp_model);
  sim::Executor exec(cp_model);
  auto rg = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
  const double rg_ms = rg_w.elapsed_ms();

  Stopwatch cp_w;
  const cp::Result bnb = solve_cp(cp_model, true);
  const double cp_ms = cp_w.elapsed_ms();

  if (rg.ok() != bnb.ok()) {
    std::printf("%s/%c: verdicts differ (rg %s, cp %s)\n", net_name, sc_name,
                rg.ok() ? "solved" : "no plan", bnb.ok() ? "solved" : "no plan");
    return 1;
  }
  if (rg.ok() && std::abs(rg.plan->cost_lb - bnb.cost) > 1e-6) {
    std::printf("%s/%c: costs differ (rg %.3f, cp %.3f)\n", net_name, sc_name,
                rg.plan->cost_lb, bnb.cost);
    return 1;
  }
  const double cost = rg.ok() ? rg.plan->cost_lb : 0.0;
  std::printf("  %-5s %c | %11.2f | rg %9.2f ms (%7llu exp) | cp %9.2f ms (%8llu branches)\n",
              net_name, sc_name, cost, rg_ms,
              (unsigned long long)rg.stats.rg_expansions, cp_ms,
              (unsigned long long)bnb.stats.branches);
  benchjson::emit("cp", {benchjson::kv("family", "table2"),
                         benchjson::kv("net", net_name),
                         benchjson::kv("scenario", scenario),
                         benchjson::kv("plan_found", rg.ok()),
                         benchjson::kv("cost_lb", cost),
                         benchjson::kv("rg_ms", rg_ms),
                         benchjson::kv("cp_ms", cp_ms),
                         benchjson::kv("rg_expansions", rg.stats.rg_expansions),
                         benchjson::kv("cp_branches", bnb.stats.branches)},
                  nullptr);
  return 0;
}

}  // namespace

int main() {
  constexpr int kRepeats = 9;
  constexpr int kMiddles = 8;

  int rc = run_star(kMiddles, kRepeats);

  std::printf("\nbackend comparison (both cost-optimal; costs must agree):\n");
  const auto tiny = domains::media::tiny();
  for (char sc : {'B', 'C', 'D', 'E'}) rc |= run_table2_row("tiny", *tiny, sc);
  const auto small = domains::media::small();
  rc |= run_table2_row("small", *small, 'C');
  return rc;
}
