// Level-granularity ablation (Section 4.2's closing observation):
//
//   "The best quality of a solution would be achieved if the bandwidth of
//    the media stream is cut at two points exactly around 90.  Obtaining
//    such values automatically requires reversibility of resource functions.
//    Scenario C approximates the ideal values: it selects the optimal
//    configuration, but requires slightly more resources than absolutely
//    necessary (the bandwidth required on LAN links is 65 instead of the
//    optimal 58.5)."
//
// We sweep the upper cutpoint of the demand level [90, x) downward toward
// 90: the closer the expert's cut brackets the demand, the closer the
// reserved LAN bandwidth falls to the ideal 58.5.
#include <cstdio>

#include "bench_json.hpp"
#include "core/planner.hpp"
#include "domains/media.hpp"
#include "model/compile.hpp"
#include "sim/executor.hpp"

int main() {
  using namespace sekitei;

  std::printf("Level granularity vs solution quality (Small network)\n");
  std::printf("%18s | %7s | %12s | %12s | %s\n", "M cutpoints", "steps", "reserved LAN",
              "ideal LAN", "overhead");

  const double ideal = 58.5;  // 0.65 * 90, the reversible-functions optimum
  for (double upper : {200.0, 150.0, 120.0, 100.0, 95.0, 91.0, 90.1}) {
    auto inst = domains::media::small();
    auto cp = model::compile(inst->problem,
                             domains::media::scenario_with_cuts({90.0, upper}));
    core::Sekitei planner(cp);
    sim::Executor exec(cp);
    auto r = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
    if (!r.ok()) {
      std::printf("      {90, %6.1f} | no plan (%s)\n", upper, r.failure.c_str());
      continue;
    }
    auto rep = exec.execute(*r.plan);
    const double lan = rep.max_reserved(net::LinkClass::Lan);
    std::printf("      {90, %6.1f} | %7zu | %12.2f | %12.1f | %+6.1f%%\n", upper,
                r.plan->size(), lan, ideal, 100.0 * (lan - ideal) / ideal);
    benchjson::emit("level_granularity",
                    {benchjson::kv("upper_cut", upper), benchjson::kv("reserved_lan", lan),
                     benchjson::kv("plan_actions", r.plan->size())},
                    &r.stats);
  }

  std::printf("\npaper reference: scenario C (cuts {90,100}) reserves 65 LAN units — an\n"
              "11%% overhead over the ideal 58.5; tightening the cut toward 90 closes\n"
              "the gap without any reversibility assumption.\n");
  return 0;
}
