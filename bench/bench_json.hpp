// Shared helper for the bench harness: one machine-readable JSON line per
// planner run, printed to stdout alongside the human tables.  Lines start
// with `{"bench":` so a trajectory collector can extract them with a plain
// `grep '^{"bench"'`.  The planner-work counters ride along via
// core::stats_to_json(), so every bench reports the same schema.
#pragma once

#include <cstdio>
#include <initializer_list>
#include <string>

#include "core/stats.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"

namespace sekitei::benchjson {

/// Schema version stamped on every record (the "v" key).  Bump when a key is
/// renamed or its meaning changes; consumers (tools/perf_gate.py,
/// sekitei_stats) refuse records from a future major version.
inline constexpr std::uint32_t kSchemaVersion = 1;

/// One extra key/value on the run record; `value` is already-rendered JSON.
struct Kv {
  const char* key;
  std::string value;
};

[[nodiscard]] inline Kv kv(const char* key, const char* v) {
  std::string rendered;
  json::append_escaped(rendered, v);
  return {key, std::move(rendered)};
}
[[nodiscard]] inline Kv kv(const char* key, const std::string& v) { return kv(key, v.c_str()); }
[[nodiscard]] inline Kv kv(const char* key, double v) {
  std::string rendered;
  json::append_number(rendered, v);
  return {key, std::move(rendered)};
}
[[nodiscard]] inline Kv kv(const char* key, std::uint64_t v) {
  std::string rendered;
  json::append_number(rendered, v);
  return {key, std::move(rendered)};
}
[[nodiscard]] inline Kv kv(const char* key, int v) {
  return kv(key, static_cast<std::uint64_t>(v < 0 ? 0 : v));
}
[[nodiscard]] inline Kv kv(const char* key, bool v) {
  return Kv{key, v ? "true" : "false"};
}

/// Prints the run record:
///   {"bench":"table2","v":1,"ts_ms":...,"net":"Tiny",...,"stats":{...}}
/// Pass nullptr for `stats` on runs that never reached the planner.
inline void emit(const char* bench, std::initializer_list<Kv> fields,
                 const core::PlannerStats* stats) {
  std::string line = "{\"bench\":";
  json::append_escaped(line, bench);
  line += ",\"v\":";
  json::append_number(line, static_cast<std::uint64_t>(kSchemaVersion));
  line += ",\"ts_ms\":";
  json::append_number(line, metrics::wall_ms());
  for (const Kv& f : fields) {
    line.push_back(',');
    json::append_escaped(line, f.key);
    line.push_back(':');
    line += f.value;
  }
  if (stats != nullptr) {
    line += ",\"stats\":";
    line += core::stats_to_json(*stats);
  }
  line += "}\n";
  // Single fwrite so a record is never interleaved with output from another
  // thread (Google Benchmark and the throughput bench both run multithreaded).
  std::fwrite(line.data(), 1, line.size(), stdout);
  std::fflush(stdout);
}

}  // namespace sekitei::benchjson
