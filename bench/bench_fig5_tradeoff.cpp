// Reproduces Fig. 5 ("Effect of cost functions on the choice of plan").
//
// The T stream can reach the client two ways: three generous links (no
// transformation) or two thin links that force Zip/Unzip.  "Which plan would
// perform better in a given situation depends on the relative cost of link
// bandwidth and node resources."  We sweep the link-cost weight wLink (with
// the component weight fixed at 1) and report which plan the planner picks
// and at what cost — the crossover is the figure's point.
#include <cstdio>

#include "bench_json.hpp"
#include "core/planner.hpp"
#include "domains/media.hpp"
#include "model/compile.hpp"
#include "sim/executor.hpp"

int main() {
  using namespace sekitei;

  std::printf("Fig. 5: plan choice vs relative link-bandwidth cost\n");
  std::printf("%7s | %9s | %5s | %9s | %s\n", "wLink", "cost lb", "steps", "plan", "crossings");

  std::string prev_kind;
  for (double w = 0.2; w <= 2.001; w += 0.1) {
    domains::media::Params p;
    p.link_cost_weight = w;
    auto inst = domains::media::fig5(p);
    auto cp = model::compile(inst->problem, domains::media::scenario('C'));
    core::Sekitei planner(cp);
    sim::Executor exec(cp);
    auto r = planner.plan([&](const core::Plan& pl) { return exec.execute(pl).feasible; });
    if (!r.ok()) {
      std::printf("%7.2f | no plan (%s)\n", w, r.failure.c_str());
      continue;
    }
    int zips = 0, crossings = 0;
    for (ActionId a : r.plan->steps) {
      const model::GroundAction& act = cp.actions[a.index()];
      if (act.kind == model::ActionKind::Cross) ++crossings;
      if (act.kind == model::ActionKind::Place &&
          cp.domain->component_at(act.spec_index).name == "Zip") {
        ++zips;
      }
    }
    const char* kind = zips > 0 ? "zip+2links" : "direct-3links";
    std::printf("%7.2f | %9.3f | %5zu | %9s | %d%s\n", w, r.plan->cost_lb, r.plan->size(),
                kind, crossings,
                (!prev_kind.empty() && prev_kind != kind) ? "   <-- crossover" : "");
    benchjson::emit("fig5_tradeoff",
                    {benchjson::kv("w_link", w), benchjson::kv("plan_kind", kind),
                     benchjson::kv("cost_lb", r.plan->cost_lb),
                     benchjson::kv("plan_actions", r.plan->size())},
                    &r.stats);
    prev_kind = kind;
  }

  std::printf("\npaper reference: the cheapest plan flips from the 3-link route to the\n"
              "2-link route with Zip/Unzip as link bandwidth becomes relatively more\n"
              "expensive than node processing; 'the cheapest plan is not necessarily\n"
              "the one with the smallest number of steps'.\n");
  return 0;
}
