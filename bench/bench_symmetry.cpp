// Canonical-representative pruning, wall-clock: plan the same instance with
// and without the verified node partition attached (analysis/symmetry.hpp)
// and compare medians.  Two families:
//
//   star          server pinned at the hub, K link-for-link identical
//                 middle nodes each offering the same LAN-in/WAN-out route
//                 to the client; the WAN legs sit below the raw T demand so
//                 every route needs the Zip/Unzip transformation.  The
//                 unpruned search explores all K interchangeable routes,
//                 the pruned search only the canonical one — the
//                 "symmetry.speedup" number the perf gate pins.
//   transit-stub  the 93-node Large network (Fig. 10).  Its generated stub
//                 domains are deliberately irregular, so this family mostly
//                 measures that attaching the partition to an asymmetric
//                 instance costs nothing (speedup ~1.0, not gated: the perf
//                 gate takes the max across "symmetry" records).
//
// Both runs of a pair must agree on the optimal cost — pruning only removes
// twin branches, never plans (tests/symmetry_test.cpp pins the same
// guarantee; the fuzzer's symmetry oracle re-checks it on random instances).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/symmetry.hpp"
#include "bench_json.hpp"
#include "core/planner.hpp"
#include "domains/media.hpp"
#include "model/compile.hpp"
#include "model/textio.hpp"
#include "sim/executor.hpp"
#include "support/timer.hpp"

namespace {

using namespace sekitei;

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Hub-and-spoke drop-off: s -LAN- m_i -WAN- cl for K identical middles.
std::string star_problem(int middles) {
  std::string text = "network {\n  node s { cpu 30; }\n";
  for (int i = 1; i <= middles; ++i) {
    text += "  node m" + std::to_string(i) + " { cpu 30; }\n";
  }
  text += "  node cl { cpu 30; }\n";
  for (int i = 1; i <= middles; ++i) {
    const std::string m = "m" + std::to_string(i);
    text += "  link s " + m + " lan { lbw 150; delay 1; }\n";
    text += "  link " + m + " cl wan { lbw 66; delay 10; }\n";
  }
  text +=
      "}\n"
      "problem {\n"
      "  stream M.ibw at s = [0, 200];\n"
      "  preplaced Server at s;\n"
      "  forbid Server;\n"
      "  restrict Client to cl;\n"
      "  goal Client at cl;\n"
      "}\n"
      "scenario {\n"
      "  levels M.ibw { 90, 100 }\n"
      "  levels T.ibw { 63, 70 }\n"
      "  levels I.ibw { 27, 30 }\n"
      "  levels Z.ibw { 31.5, 35 }\n"
      "}\n";
  return text;
}

struct PairResult {
  double unpruned_p50 = 0.0;
  double pruned_p50 = 0.0;
  double cost = 0.0;
  std::uint32_t classes = 0;
  core::PlannerStats pruned_stats;
  bool ok = false;
};

/// Times plan() over `cp` with the partition detached, then attached.
PairResult run_pair(const model::CppProblem& problem, const spec::LevelScenario& scen,
                    int repeats) {
  PairResult out;
  std::vector<double> unpruned_ms, pruned_ms;
  double unpruned_cost = 0.0, pruned_cost = 0.0;
  for (int i = 0; i < repeats; ++i) {
    {
      Stopwatch w;
      auto cp = model::compile(problem, scen);
      core::Sekitei planner(cp);
      sim::Executor exec(cp);
      auto r = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
      unpruned_ms.push_back(w.elapsed_ms());
      if (!r.ok()) {
        std::printf("unpruned run found no plan: %s\n", r.failure.c_str());
        return out;
      }
      unpruned_cost = r.plan->cost_lb;
    }
    {
      Stopwatch w;
      auto cp = model::compile(problem, scen);
      analysis::attach_symmetry(cp);
      core::Sekitei planner(cp);
      sim::Executor exec(cp);
      auto r = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
      pruned_ms.push_back(w.elapsed_ms());
      if (!r.ok()) {
        std::printf("pruned run found no plan: %s\n", r.failure.c_str());
        return out;
      }
      pruned_cost = r.plan->cost_lb;
      out.classes = cp.symmetric_class_count;
      out.pruned_stats = r.stats;
    }
  }
  if (unpruned_cost != pruned_cost) {
    std::printf("cost mismatch: unpruned %.3f vs pruned %.3f\n", unpruned_cost, pruned_cost);
    return out;
  }
  out.unpruned_p50 = median(unpruned_ms);
  out.pruned_p50 = median(pruned_ms);
  out.cost = pruned_cost;
  out.ok = true;
  return out;
}

int emit_family(const char* family, const PairResult& r, int repeats) {
  if (!r.ok) return 1;
  const double speedup = r.pruned_p50 > 0.0 ? r.unpruned_p50 / r.pruned_p50 : 0.0;
  std::printf("%s: %u symmetric class(es)\n", family, r.classes);
  std::printf("  unpruned p50 %8.3f ms  (cost lb %.2f)\n", r.unpruned_p50, r.cost);
  std::printf("  pruned   p50 %8.3f ms  (%llu placements pruned)\n", r.pruned_p50,
              (unsigned long long)r.pruned_stats.pruned_placements);
  std::printf("  speedup %.2fx\n", speedup);
  benchjson::emit("symmetry",
                  {benchjson::kv("family", family),
                   benchjson::kv("repeats", static_cast<std::uint64_t>(repeats)),
                   benchjson::kv("classes", static_cast<std::uint64_t>(r.classes)),
                   benchjson::kv("unpruned_p50_ms", r.unpruned_p50),
                   benchjson::kv("pruned_p50_ms", r.pruned_p50),
                   benchjson::kv("speedup", speedup),
                   benchjson::kv("cost_lb", r.cost)},
                  &r.pruned_stats);
  return 0;
}

}  // namespace

int main() {
  constexpr int kRepeats = 9;
  constexpr int kMiddles = 6;

  const auto star = model::load_problem(domains::media::domain_text(),
                                        star_problem(kMiddles));
  const PairResult star_r = run_pair(star->problem, star->scenario, kRepeats);
  int rc = emit_family("star", star_r, kRepeats);

  const auto large = domains::media::large();
  const spec::LevelScenario scen = domains::media::scenario('C');
  const PairResult large_r = run_pair(large->problem, scen, kRepeats);
  rc |= emit_family("transit-stub", large_r, kRepeats);
  return rc;
}
