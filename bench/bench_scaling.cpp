// Scaling ablations (Section 4.3): how the number of levels and the size of
// the network drive planner work.
//
//   "Adding more levels of interface bandwidth (scenario D) and leveling
//    link bandwidth (scenario E) does not always improve the quality of
//    solution, but negatively affects performance of the planner."
//   "In the future, we plan to analyze the dependency between the number and
//    quality of resource levels and performance of the algorithm" — this
//    harness is that analysis.
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "core/planner.hpp"
#include "domains/media.hpp"
#include "model/compile.hpp"
#include "sim/executor.hpp"
#include "support/error.hpp"
#include "support/timer.hpp"

namespace {

using namespace sekitei;

struct Row {
  std::size_t actions = 0;
  std::size_t plan_len = 0;
  double cost = 0;
  double ms = 0;
  bool ok = false;
};

Row run(const domains::media::Instance& inst, const spec::LevelScenario& sc,
        const char* series, double x) {
  Row row;
  Stopwatch watch;
  auto cp = model::compile(inst.problem, sc);
  core::Sekitei planner(cp);
  sim::Executor exec(cp);
  auto r = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
  row.ms = watch.elapsed_ms();
  row.actions = cp.actions.size();
  row.ok = r.ok();
  if (r.ok()) {
    row.plan_len = r.plan->size();
    row.cost = r.plan->cost_lb;
  }
  benchjson::emit("scaling",
                  {benchjson::kv("series", series), benchjson::kv("x", x),
                   benchjson::kv("plan_found", row.ok), benchjson::kv("cost_lb", row.cost),
                   benchjson::kv("plan_actions", row.plan_len),
                   benchjson::kv("total_ms", row.ms)},
                  &r.stats);
  return row;
}

}  // namespace

int main() {
  using namespace sekitei;

  std::printf("A. Planner work vs number of M-stream levels (Small network)\n");
  std::printf("%8s | %8s | %6s | %9s | %9s\n", "#levels", "actions", "steps", "cost lb",
              "time ms");
  for (int n : {1, 2, 3, 5, 7, 9}) {
    // n cutpoints spread between 30 and 130, always including 90 and 100 so
    // the demand stays expressible.
    std::vector<double> cuts{90, 100};
    for (int i = 0; static_cast<int>(cuts.size()) < n; ++i) {
      const double c = 30.0 + 12.0 * i;
      if (c != 90 && c != 100) cuts.push_back(c);
    }
    std::sort(cuts.begin(), cuts.end());
    if (n == 1) cuts = {100};
    auto inst = domains::media::small();
    Row row = run(*inst, domains::media::scenario_with_cuts(cuts), "levels",
                  static_cast<double>(cuts.size() + 1));
    std::printf("%8zu | %8zu | %6zu | %9.2f | %9.1f %s\n", cuts.size() + 1, row.actions,
                row.plan_len, row.cost, row.ms, row.ok ? "" : "(no plan)");
  }

  std::printf("\nB. Planner work vs network size (chain LAN^k-WAN-LAN, scenario C)\n");
  std::printf("%8s | %8s | %6s | %9s | %9s\n", "nodes", "actions", "steps", "cost lb",
              "time ms");
  for (std::uint32_t hops : {1u, 2u, 4u, 8u, 12u, 16u}) {
    auto inst = domains::media::chain_instance(hops, 1);
    Row row = run(*inst, domains::media::scenario('C'), "chain_nodes",
                  static_cast<double>(inst->net.node_count()));
    std::printf("%8zu | %8zu | %6zu | %9.2f | %9.1f %s\n", inst->net.node_count(), row.actions,
                row.plan_len, row.cost, row.ms, row.ok ? "" : "(no plan)");
  }

  std::printf("\nC. Planner work vs transit-stub network size (scenario C)\n");
  std::printf("%8s | %8s | %6s | %9s | %9s\n", "nodes", "actions", "steps", "cost lb",
              "time ms");
  // large() is fixed at the paper's 93 nodes; report the spread across
  // topology seeds (not every seed yields hosts at the required LAN depths —
  // those are skipped, mirroring how one would re-roll GT-ITM).
  for (std::uint64_t seed : {13u, 17u, 19u, 23u, 29u, 31u}) {
    try {
      auto inst = domains::media::large({}, seed);
      Row row = run(*inst, domains::media::scenario('C'), "transit_stub_seed",
                    static_cast<double>(seed));
      std::printf("%8zu | %8zu | %6zu | %9.2f | %9.1f %s (seed %llu)\n",
                  inst->net.node_count(), row.actions, row.plan_len, row.cost, row.ms,
                  row.ok ? "" : "(no plan)", (unsigned long long)seed);
    } catch (const Error& e) {
      std::printf("%8s | seed %llu rejected: %s\n", "-", (unsigned long long)seed, e.what());
    }
  }

  std::printf("\npaper reference: more levels => more leveled actions and more planner\n"
              "work at equal solution quality (Table 2, D and E rows); network growth\n"
              "inflates the action set roughly linearly while the plan stays put.\n");
  return 0;
}
