// Pre-flight rejection latency vs search-to-exhaustion on provably
// infeasible instances.
//
// The instance family is a value-capped delivery chain (the lint corpus's
// `capped` case, scaled up): a server produces at most 60 units, a chain of
// amplifier stages copies the value along, and the client demands 90.
// Every ground action is individually viable and the goal is logically
// reachable, so the planner's PLRG phase passes and the RG search has to
// exhaust its whole space before answering "no plan".  The interval-
// annotated reachability fixpoint (analysis/preflight) proves the same
// verdict in a handful of sweeps.
//
// For each scale the bench reports both latencies and their ratio; the JSON
// line records them machine-readably:
//
//   {"bench":"preflight","nodes":6,...,"search_ms":...,"preflight_ms":...,
//    "speedup":...,"agreed":true,...}
//
// `agreed` asserts the two oracles match: preflight said infeasible AND the
// exhaustive search found no plan.  A false here is a soundness bug.
#include <cstdio>
#include <memory>
#include <string>

#include "analysis/analyzer.hpp"
#include "bench_json.hpp"
#include "core/planner.hpp"
#include "model/compile.hpp"
#include "model/textio.hpp"
#include "sim/executor.hpp"
#include "support/timer.hpp"

namespace {

using namespace sekitei;

std::string sname(int k) {
  std::string s("S");
  s += std::to_string(k);
  return s;
}

std::string chain_domain(int stages) {
  std::string d = "param demand = 90;\nparam serverCap = 60;\n";
  for (int k = 0; k <= stages; ++k) {
    const std::string s = sname(k);
    d += "interface ";
    d += s;
    d += " {\n  property x degradable;\n  cross {\n    ";
    d += s;
    d += ".x' := min(";
    d += s;
    d += ".x, link.lbw);\n    link.lbw -= min(";
    d += s;
    d += ".x, link.lbw);\n  }\n  cost 1;\n}\n";
  }
  d += "component Server {\n  implements S0;\n  effects { S0.x := serverCap; }\n"
       "  cost 1;\n}\n";
  for (int k = 1; k <= stages; ++k) {
    const std::string in = sname(k - 1);
    const std::string out = sname(k);
    d += "component Amp";
    d += std::to_string(k);
    d += " {\n  requires ";
    d += in;
    d += ";\n  implements ";
    d += out;
    d += ";\n  conditions { node.cpu >= 1; }\n  effects {\n    ";
    d += out;
    d += ".x := ";
    d += in;
    d += ".x;\n    node.cpu -= 1;\n  }\n  cost 1;\n}\n";
  }
  d += "component Client {\n  requires S";
  d += std::to_string(stages);
  d += ";\n  conditions { S";
  d += std::to_string(stages);
  d += ".x >= demand; }\n  cost 1;\n}\n";
  return d;
}

std::string chain_problem(int nodes, int stages) {
  std::string p = "network {\n";
  for (int n = 0; n < nodes; ++n) {
    p += "  node n";
    p += std::to_string(n);
    p += " { cpu 100; }\n";
  }
  for (int n = 0; n + 1 < nodes; ++n) {
    p += "  link n";
    p += std::to_string(n);
    p += " n";
    p += std::to_string(n + 1);
    p += " lan { lbw 1000; delay 1; }\n";
  }
  p += "}\nproblem {\n  goal Client at n";
  p += std::to_string(nodes - 1);
  p += ";\n}\nscenario {\n";
  for (int k = 0; k <= stages; ++k) {
    p += "  levels S";
    p += std::to_string(k);
    p += ".x { 10, 30, 50 }\n";
  }
  p += "}\n";
  return p;
}

}  // namespace

int main() {
  struct Scale {
    int nodes;
    int stages;
  };
  // 5n/3amp already exhausts ~200k RG nodes (seconds of search) against a
  // quarter-millisecond pre-flight; larger scales only inflate the runtime.
  const Scale scales[] = {{3, 1}, {4, 2}, {5, 3}};

  std::printf("%-14s %8s %10s %12s %9s %7s\n", "instance", "actions", "search_ms",
              "preflight_ms", "speedup", "agreed");
  for (const Scale sc : scales) {
    const auto lp = model::load_problem(chain_domain(sc.stages),
                                        chain_problem(sc.nodes, sc.stages));
    const auto cp = model::compile(lp->problem, lp->scenario);

    Stopwatch search_watch;
    core::Sekitei planner(cp, {});
    sim::Executor exec(cp);
    const auto r = planner.plan([&](const core::Plan& plan) {
      return exec.execute(plan).feasible;
    });
    const double search_ms = search_watch.elapsed_ms();

    // The fixpoint runs in microseconds; average over repetitions so the
    // reported latency is not clock-granularity noise.
    const int reps = 50;
    analysis::PreflightVerdict verdict;
    Stopwatch preflight_watch;
    for (int i = 0; i < reps; ++i) verdict = analysis::preflight(cp);
    const double preflight_ms = preflight_watch.elapsed_ms() / reps;

    const bool agreed = verdict.infeasible && !r.ok();
    const double speedup = preflight_ms > 0.0 ? search_ms / preflight_ms : 0.0;
    const std::string name =
        std::to_string(sc.nodes) + "n/" + std::to_string(sc.stages) + "amp";
    std::printf("%-14s %8zu %10.3f %12.5f %8.1fx %7s\n", name.c_str(), cp.actions.size(),
                search_ms, preflight_ms, speedup, agreed ? "yes" : "NO");

    benchjson::emit("preflight",
                    {benchjson::kv("instance", name), benchjson::kv("nodes", sc.nodes),
                     benchjson::kv("stages", sc.stages),
                     benchjson::kv("actions", static_cast<std::uint64_t>(cp.actions.size())),
                     benchjson::kv("search_ms", search_ms),
                     benchjson::kv("preflight_ms", preflight_ms),
                     benchjson::kv("speedup", speedup),
                     benchjson::kv("preflight_sweeps",
                                   static_cast<std::uint64_t>(verdict.sweeps)),
                     benchjson::kv("verdict_code", verdict.code),
                     benchjson::kv("agreed", agreed)},
                    &r.stats);
    if (!agreed) {
      std::fprintf(stderr, "MISMATCH at %s: preflight=%d search_found_plan=%d\n",
                   name.c_str(), verdict.infeasible ? 1 : 0, r.ok() ? 1 : 0);
      return 1;
    }
  }
  return 0;
}
