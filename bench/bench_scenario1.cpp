// Reproduces Scenario 1 (Fig. 3 + Fig. 4): in resource-constrained
// situations the greedy original Sekitei finds no plan although one exists;
// the leveled planner finds it.
//
// "Sending the M stream directly to the client does not satisfy client's
//  bandwidth requirements, and the amount of CPU available on node n0 is
//  less than that required for processing all available bandwidth of the M
//  stream ... Consequently, the latter will not find a solution to the CPP
//  even though one exists."
#include <cstdio>

#include "bench_json.hpp"
#include "core/planner.hpp"
#include "domains/media.hpp"
#include "model/compile.hpp"
#include "sim/executor.hpp"

namespace {

using namespace sekitei;

void run(const char* name, const domains::media::Instance& inst) {
  std::printf("%s network:\n", name);
  // Greedy baseline (original Sekitei, scenario A).
  {
    auto cp = model::compile(inst.problem, domains::media::scenario('A'));
    core::PlannerOptions opt;
    opt.mode = core::PlannerOptions::Mode::Greedy;
    core::Sekitei planner(cp, opt);
    auto r = planner.plan();
    std::printf("  greedy (worst-case reservation): %s\n",
                r.ok() ? "FOUND A PLAN (unexpected)" : "no plan  [matches the paper]");
    benchjson::emit("scenario1",
                    {benchjson::kv("net", name), benchjson::kv("mode", "greedy"),
                     benchjson::kv("plan_found", r.ok())},
                    &r.stats);
  }
  // Leveled planner, scenario C.
  {
    auto cp = model::compile(inst.problem, domains::media::scenario('C'));
    core::Sekitei planner(cp);
    sim::Executor exec(cp);
    auto r = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
    benchjson::emit("scenario1",
                    {benchjson::kv("net", name), benchjson::kv("mode", "leveled"),
                     benchjson::kv("plan_found", r.ok()),
                     benchjson::kv("cost_lb", r.ok() ? r.plan->cost_lb : 0.0),
                     benchjson::kv("plan_actions", r.ok() ? r.plan->size() : 0)},
                    &r.stats);
    if (!r.ok()) {
      std::printf("  leveled: UNEXPECTED FAILURE: %s\n", r.failure.c_str());
      return;
    }
    std::printf("  leveled (scenario C): %zu-action plan, cost lower bound %.2f\n",
                r.plan->size(), r.plan->cost_lb);
    auto rep = exec.execute(*r.plan);
    std::printf("  executed: cost %.2f, cpu on source-side node %.1f <= 30\n",
                rep.actual_cost, rep.node_use.empty() ? 0.0 : rep.node_use.front().used);
  }
}

}  // namespace

int main() {
  std::printf("Scenario 1 (Figs. 3-4): greedy fails where the leveled planner succeeds\n\n");
  run("Tiny", *domains::media::tiny());
  run("Small", *domains::media::small());
  run("Large", *domains::media::large());

  std::printf("\nFig. 4 plan found on Tiny (leveled, scenario C):\n");
  auto inst = domains::media::tiny();
  auto cp = model::compile(inst->problem, domains::media::scenario('C'));
  core::Sekitei planner(cp);
  sim::Executor exec(cp);
  auto r = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
  if (r.ok()) std::printf("%s", r.plan->str(cp).c_str());
  std::printf("\npaper reference (Fig. 4): place Splitter n0, place Zip n0, cross Z, cross I,\n"
              "place Unzip n1, place Merger n1 (+ the client placement) = 7 actions.\n");
  return 0;
}
