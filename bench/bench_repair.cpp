// Repair vs redeploy (the Section 6 extension): after each possible single
// link failure on the diamond network, compare the cost/length of a repair
// plan (reusing the surviving deployment at reconnect/migrate discounts)
// against planning from scratch on the damaged network.
#include <cstdio>

#include "bench_json.hpp"
#include "core/planner.hpp"
#include "domains/media.hpp"
#include "model/compile.hpp"
#include "repair/repair.hpp"
#include "sim/executor.hpp"

int main() {
  using namespace sekitei;

  auto inst = domains::media::diamond();
  auto cp = model::compile(inst->problem, domains::media::scenario('C'));
  core::Sekitei planner(cp);
  sim::Executor exec(cp);
  auto original = planner.plan([&](const core::Plan& p) { return exec.execute(p).feasible; });
  if (!original.ok()) {
    std::printf("no original plan: %s\n", original.failure.c_str());
    return 1;
  }
  auto rep = exec.execute(*original.plan);
  std::printf("original deployment: %zu actions, cost lower bound %.2f\n\n",
              original.plan->size(), original.plan->cost_lb);
  std::printf("%12s | %16s | %16s | %9s\n", "failed link", "repair (n, cost)",
              "scratch (n, cost)", "saving");

  for (LinkId l : inst->net.link_ids()) {
    const net::Link& link = inst->net.link(l);
    const std::string name = inst->net.node(link.a).name + "-" + inst->net.node(link.b).name;
    repair::Damage dmg;
    dmg.failed_links.push_back(l);

    auto survivors = repair::compute_survivors(cp, *original.plan, rep.choices, dmg);
    net::Network damaged = repair::damaged_copy(inst->net, dmg, &survivors.residual);
    model::CppProblem rp = repair::repair_problem(inst->problem, damaged, survivors);
    auto rcp = model::compile(rp, domains::media::scenario('C'));
    repair::apply_adaptation_costs(rcp, survivors, {});
    core::Sekitei rplanner(rcp);
    sim::Executor rexec(rcp);
    auto rr = rplanner.plan([&](const core::Plan& p) { return rexec.execute(p).feasible; });

    net::Network bare = repair::damaged_copy(inst->net, dmg);
    model::CppProblem sp = inst->problem;
    sp.network = &bare;
    auto scp = model::compile(sp, domains::media::scenario('C'));
    core::Sekitei splanner(scp);
    sim::Executor sexec(scp);
    auto sr = splanner.plan([&](const core::Plan& p) { return sexec.execute(p).feasible; });

    char rbuf[32], sbuf[32], save[16];
    if (rr.ok()) {
      std::snprintf(rbuf, sizeof rbuf, "%zu, %.2f", rr.plan->size(), rr.plan->cost_lb);
    } else {
      std::snprintf(rbuf, sizeof rbuf, "none");
    }
    if (sr.ok()) {
      std::snprintf(sbuf, sizeof sbuf, "%zu, %.2f", sr.plan->size(), sr.plan->cost_lb);
    } else {
      std::snprintf(sbuf, sizeof sbuf, "none");
    }
    if (rr.ok() && sr.ok()) {
      std::snprintf(save, sizeof save, "%.0f%%", 100.0 * (1 - rr.plan->cost_lb / sr.plan->cost_lb));
    } else {
      std::snprintf(save, sizeof save, "-");
    }
    std::printf("%12s | %16s | %16s | %9s\n", name.c_str(), rbuf, sbuf, save);
    benchjson::emit("repair",
                    {benchjson::kv("failed_link", name),
                     benchjson::kv("repair_found", rr.ok()),
                     benchjson::kv("repair_cost_lb", rr.ok() ? rr.plan->cost_lb : 0.0),
                     benchjson::kv("scratch_found", sr.ok()),
                     benchjson::kv("scratch_cost_lb", sr.ok() ? sr.plan->cost_lb : 0.0)},
                    &rr.stats);
  }

  std::printf("\nexpected shape: failures on the used route are repaired by rerouting\n"
              "over the backup at a fraction of the redeployment cost; failures on\n"
              "unused links cost (nearly) nothing; reconnecting a surviving component\n"
              "is cheaper than migrating it, which is cheaper than a fresh install.\n");
  return 0;
}
