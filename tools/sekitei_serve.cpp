// Batch planning driver for the concurrent service: load one component
// domain and many problem files, submit everything to the PlanningEngine,
// and stream one NDJSON record per request to stdout.
//
//   $ ./sekitei_serve <domain.sk> <problem.sk>... [--jobs N] [--deadline-ms D]
//                     [--repeat K] [--mode leveled|greedy|cp] [--no-validate]
//                     [--cache-capacity N] [--max-pending N] [--retries N]
//                     [--retry-base-ms D] [--log <level>]
//
// --jobs          worker threads (default: hardware concurrency)
// --deadline-ms   per-request deadline; requests that exceed it either come
//                 back "degraded" with a fallback plan (see request.hpp) or
//                 "deadline_exceeded" with partial stats
// --no-degrade    disable the graceful-degradation ladder (pre-ladder
//                 behavior: a fired deadline is always deadline_exceeded)
// --repeat        submit each problem file K times (cache hit-rate demo: the
//                 2nd..Kth submission of a file reuses its compiled problem)
// --cache-capacity  compiled-problem cache slots; 0 disables caching
// --max-pending   admission control: reject submissions while this many
//                 requests are in flight (0 = unbounded)
// --retries       re-submit an admission-rejected request up to N times with
//                 jittered exponential backoff (default 3; 0 disables)
// --retry-base-ms backoff base delay (default 5; attempt k sleeps
//                 base * 2^k plus up to 50% deterministic jitter)
// --metrics       after the batch, print one NDJSON metrics snapshot
//                 (support/metrics.hpp registry) to stdout
// --metrics-every-ms D  additionally stream a snapshot every D ms while the
//                 batch runs (periodic flusher thread)
// --flight-dir DIR  dump a search flight recording (NDJSON ring of RG
//                 progress samples) to DIR/<id>.flight.ndjson for every
//                 non-solved request
// --drift         drift-stream mode: solve each problem, mutate the solved
//                 instance with a seeded damage delta (repair::seeded_drift),
//                 resubmit the damaged instance as a repair request, and
//                 stream both records (the repair's id gets a "/repair"
//                 suffix).  --drift-seed varies the damage; --migration-
//                 penalty prices each migrated component into repair_cost.
// --drift-unsurvivable  instead of a seeded delta, the damage fails EVERY
//                 link: no repair can exist, so (with --preflight) each
//                 repair record must come back infeasible with
//                 "repair_preflight_rejected":true before any search runs.
//
// Fault injection: SEKITEI_FAULTS=<point>:<nth>[:throw|:fail][,...] arms
// deterministic faults before any request is submitted (support/fault.hpp).
//
// A summary line goes to stderr; the exit code is the maximum per-request
// exit code (solved = 0, infeasible = 1, deadline = 3, cancelled = 4,
// rejected = 5, degraded = 6; 2 is reserved for usage/input errors).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "model/compile.hpp"
#include "repair/repair.hpp"
#include "service/engine.hpp"
#include "service/wire.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"
#include "support/log.hpp"
#include "support/metrics.hpp"
#include "support/retry.hpp"
#include "support/timer.hpp"

namespace {

std::string slurp(const char* path) {
  std::ifstream in(path);
  if (!in) sekitei::raise(std::string("cannot open ") + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool is_queue_full(const sekitei::service::PlanResponse& r) {
  return r.outcome == sekitei::service::Outcome::Rejected &&
         r.failure.find("queue full") != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sekitei;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <domain.sk> <problem.sk>... [--jobs N] [--deadline-ms D]\n"
                 "          [--repeat K] [--mode leveled|greedy|cp] [--greedy]\n"
                 "          [--no-validate] [--no-degrade]\n"
                 "          [--cache-capacity N] [--max-pending N] [--retries N]\n"
                 "          [--retry-base-ms D] [--preflight] [--log <level>]\n"
                 "          [--metrics] [--metrics-every-ms D] [--flight-dir DIR]\n"
                 "          [--drift] [--drift-seed N] [--drift-unsurvivable]\n"
                 "          [--migration-penalty P]\n",
                 argv[0]);
    return 2;
  }

  {
    std::string fault_error;
    if (!fault::install_from_env("SEKITEI_FAULTS", &fault_error)) {
      std::fprintf(stderr, "error: SEKITEI_FAULTS: %s\n", fault_error.c_str());
      return 2;
    }
  }

  service::PlanningEngine::Options engine_opts;
  double deadline_ms = 0.0;
  std::size_t repeat = 1;
  std::size_t retries = 3;
  double retry_base_ms = 5.0;
  core::PlannerOptions::Mode mode = core::PlannerOptions::Mode::Leveled;
  bool validate = true, degrade = true;
  bool metrics_final = false;
  double metrics_every_ms = 0.0;
  bool drift = false;
  bool drift_unsurvivable = false;
  std::uint64_t drift_seed = 0xD21F7;
  double migration_penalty = 0.0;
  std::vector<const char*> files;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      engine_opts.workers = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      deadline_ms = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      if (repeat == 0) repeat = 1;
    } else if (std::strcmp(argv[i], "--cache-capacity") == 0 && i + 1 < argc) {
      engine_opts.cache_capacity =
          static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--max-pending") == 0 && i + 1 < argc) {
      engine_opts.max_pending =
          static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--retries") == 0 && i + 1 < argc) {
      retries = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--retry-base-ms") == 0 && i + 1 < argc) {
      retry_base_ms = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--greedy") == 0) {
      mode = core::PlannerOptions::Mode::Greedy;
    } else if (std::strcmp(argv[i], "--mode") == 0 && i + 1 < argc) {
      const char* m = argv[++i];
      if (std::strcmp(m, "leveled") == 0) {
        mode = core::PlannerOptions::Mode::Leveled;
      } else if (std::strcmp(m, "greedy") == 0) {
        mode = core::PlannerOptions::Mode::Greedy;
      } else if (std::strcmp(m, "cp") == 0) {
        mode = core::PlannerOptions::Mode::Cp;
      } else {
        std::fprintf(stderr, "error: unknown --mode %s (expected leveled, greedy or cp)\n", m);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--no-validate") == 0) {
      validate = false;
    } else if (std::strcmp(argv[i], "--no-degrade") == 0) {
      degrade = false;
    } else if (std::strcmp(argv[i], "--preflight") == 0) {
      engine_opts.preflight = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics_final = true;
    } else if (std::strcmp(argv[i], "--metrics-every-ms") == 0 && i + 1 < argc) {
      metrics_every_ms = std::strtod(argv[++i], nullptr);
      metrics_final = true;
    } else if (std::strcmp(argv[i], "--flight-dir") == 0 && i + 1 < argc) {
      engine_opts.flight_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--drift") == 0) {
      drift = true;
    } else if (std::strcmp(argv[i], "--drift-seed") == 0 && i + 1 < argc) {
      drift_seed = std::strtoull(argv[++i], nullptr, 10);
      drift = true;
    } else if (std::strcmp(argv[i], "--drift-unsurvivable") == 0) {
      drift_unsurvivable = true;
      drift = true;
    } else if (std::strcmp(argv[i], "--migration-penalty") == 0 && i + 1 < argc) {
      migration_penalty = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--log") == 0 && i + 1 < argc) {
      const char* name = argv[++i];
#ifndef SEKITEI_LOG_DISABLED
      const log::Level lvl = log::parse_level(name);
      log::set_level(lvl);
      if (lvl != log::Level::Off) {
        log::add_sink(std::make_shared<log::StreamSink>(stderr));
      } else if (std::strcmp(name, "off") != 0) {
        std::fprintf(stderr, "unknown log level '%s'\n", name);
        return 2;
      }
#else
      std::fprintf(stderr, "--log %s ignored: built with SEKITEI_LOG_DISABLED\n", name);
#endif
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return 2;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "error: no problem files given\n");
    return 2;
  }

  try {
    const std::string domain_text = slurp(argv[1]);

    // Parse each file once; repeats share the LoadedProblem (and therefore
    // the compiled-problem cache entry).
    std::vector<std::shared_ptr<const model::LoadedProblem>> problems;
    problems.reserve(files.size());
    for (const char* path : files) {
      problems.push_back(model::load_problem(domain_text, slurp(path)));
    }

    service::PlanningEngine engine(engine_opts);
    Stopwatch wall;

    // Periodic NDJSON metric snapshots interleave with the per-request
    // records on stdout; both are NDJSON, so consumers (sekitei_stats)
    // dispatch on the leading key.  stop() writes one final snapshot, which
    // also serves as the --metrics one-shot when a flusher is running.
    std::unique_ptr<metrics::Flusher> flusher;
    if (metrics_every_ms > 0.0) {
      flusher = std::make_unique<metrics::Flusher>(metrics::registry(), stdout,
                                                   metrics_every_ms);
    }

    auto make_request = [&](std::size_t f, std::size_t k) {
      service::PlanRequest req;
      req.id = repeat == 1 ? std::string(files[f])
                           : std::string(files[f]) + "#" + std::to_string(k);
      req.problem = problems[f];
      req.mode = mode;
      req.deadline_ms = deadline_ms;
      req.validate = validate;
      req.degrade.enabled = degrade;
      return req;
    };

    if (drift) {
      // Drift stream: solve -> seeded damage -> repair, sequentially per
      // instance (the pair only makes sense in order), two records each.
      int worst = 0;
      std::size_t base_solved = 0, pairs = 0, repaired = 0;
      for (std::size_t k = 0; k < repeat; ++k) {
        for (std::size_t f = 0; f < files.size(); ++f) {
          service::PlanRequest req = make_request(f, k);
          req.echo_plan = true;
          service::PlanResponse base = engine.plan(std::move(req));
          std::string line = service::wire::render_response_line(base);
          std::fwrite(line.data(), 1, line.size(), stdout);
          int code = service::outcome_exit_code(base.outcome);
          if (code > worst) worst = code;
          if (!base.ok() || !base.plan) continue;
          ++base_solved;
          const model::LoadedProblem& lp = *problems[f];
          const model::CompiledProblem cp = model::compile(lp.problem, lp.scenario);
          service::PlanRequest rreq = make_request(f, k);
          rreq.id += "/repair";
          service::RepairSpec spec;
          spec.prior_plan = *base.plan;
          spec.choices = base.choices;
          if (drift_unsurvivable) {
            // Sever every link: the goal cannot be re-delivered anywhere, so
            // the repair pre-flight (if enabled) must certify infeasibility.
            for (std::uint32_t l = 0; l < cp.net->link_count(); ++l) {
              spec.damage.failed_links.push_back(LinkId(l));
            }
          } else {
            spec.damage =
                repair::seeded_drift(cp, *base.plan, drift_seed + k * files.size() + f);
          }
          spec.migration_penalty = migration_penalty;
          rreq.repair = std::move(spec);
          service::PlanResponse rep = engine.plan(std::move(rreq));
          line = service::wire::render_response_line(rep);
          std::fwrite(line.data(), 1, line.size(), stdout);
          code = service::outcome_exit_code(rep.outcome);
          if (code > worst) worst = code;
          ++pairs;
          if (rep.repaired) ++repaired;
        }
      }
      if (flusher) {
        flusher->stop();
      } else if (metrics_final) {
        const std::string snap = metrics::registry().to_ndjson(metrics::wall_ms());
        std::fwrite(snap.data(), 1, snap.size(), stdout);
      }
      std::fflush(stdout);
      std::fprintf(stderr,
                   "sekitei_serve: drift stream %zu pairs (%zu repaired in place) "
                   "from %zu solved bases in %.1f ms\n",
                   pairs, repaired, base_solved, wall.elapsed_ms());
      return worst;
    }

    struct Submitted {
      service::PlanningEngine::Ticket ticket;
      std::size_t file;
      std::size_t rep;
    };
    std::vector<Submitted> tickets;
    tickets.reserve(files.size() * repeat);
    for (std::size_t k = 0; k < repeat; ++k) {
      for (std::size_t f = 0; f < files.size(); ++f) {
        tickets.push_back({engine.submit(make_request(f, k)), f, k});
      }
    }

    // The default Backoff seed is fixed so two identical invocations sleep
    // identically — retry schedules are part of the reproducible behavior
    // under test (support/retry.hpp; the daemon's load generator shares it).
    Backoff backoff({.base_ms = retry_base_ms});
    int worst = 0;
    std::size_t solved = 0, degraded = 0, retried = 0;
    for (auto& sub : tickets) {
      service::PlanResponse r = sub.ticket.response.get();
      // Bounded retry with jittered exponential backoff: admission-control
      // rejections ("queue full") are transient — the queue drains as the
      // workers finish — so re-submission after a short sleep usually lands.
      std::uint32_t attempts = 1;
      while (is_queue_full(r) && attempts <= retries) {
        sleep_ms(backoff.next_delay_ms(attempts - 1));
        r = engine.plan(make_request(sub.file, sub.rep));
        ++attempts;
      }
      if (attempts > 1) ++retried;
      r.attempts = attempts;
      const std::string line = service::wire::render_response_line(r);
      std::fwrite(line.data(), 1, line.size(), stdout);
      const int code = service::outcome_exit_code(r.outcome);
      if (code > worst) worst = code;
      if (r.outcome == service::Outcome::Solved) ++solved;
      if (r.outcome == service::Outcome::Degraded) ++degraded;
    }
    if (flusher) {
      flusher->stop();
    } else if (metrics_final) {
      const std::string snap = metrics::registry().to_ndjson(metrics::wall_ms());
      std::fwrite(snap.data(), 1, snap.size(), stdout);
    }
    std::fflush(stdout);

    const double wall_ms = wall.elapsed_ms();
    const auto cache = engine.cache_stats();
    std::fprintf(stderr,
                 "sekitei_serve: %zu/%zu solved (%zu degraded, %zu retried) in %.1f ms "
                 "(%zu workers, cache %llu hits / %llu misses, hit rate %.2f)\n",
                 solved, tickets.size(), degraded, retried, wall_ms, engine.worker_count(),
                 (unsigned long long)cache.hits, (unsigned long long)cache.misses,
                 cache.hit_rate());
    return worst;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
