#!/usr/bin/env python3
"""Perf-regression gate over the bench harness's NDJSON records.

Feed it the stdout of bench_table2 and/or bench_throughput (their
machine-readable lines start with ``{"bench"``; anything else is ignored)
and it compares a handful of headline numbers against the checked-in
baseline, failing (exit 1) when any regresses by more than the tolerance:

    build/bench/bench_table2      > /tmp/bench.ndjson
    build/bench/bench_throughput >> /tmp/bench.ndjson
    python3 tools/perf_gate.py /tmp/bench.ndjson

Gated metrics (lower_is_better marked "<"):
    table2.search_ms_total   <  sum of stats.time_search_ms over solved rows
    table2.total_ms_total    <  sum of total_ms over all table2 rows
    throughput.best_rps      >  max req/s across the worker sweep
    throughput.warm_rps      >  req/s of the warm-cache ablation row
    netload.rps              >  req/s sustained through the daemon's wire
                                path (sekitei_load record, max across runs)
    driftload.speedup        >  full-replan p50 over incremental-repair p50
                                on the drift bench (bench_drift record)
    symmetry.speedup         >  unpruned p50 over twin-pruned p50 on the
                                symmetric-star bench (bench_symmetry record,
                                max across families)
    cp.speedup               >  CP-without-symmetry p50 over CP-with on the
                                symmetric-star bench (bench_cp "star" record;
                                the table2 comparison rows carry no speedup
                                key and are not gated)

A metric missing from the input is skipped (so the gate can run on a
table2-only stream); a metric missing from the baseline fails unless
--update is given.  --update rewrites the baseline from the current run.
Tolerance: --tolerance X or PERF_GATE_TOLERANCE (fraction, default 0.30 —
CI noise on shared runners makes tighter gates flaky).

Exit codes: 0 ok / 1 regression / 2 usage or input error.
"""

import argparse
import json
import os
import sys

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "bench", "baselines", "baseline.json")
SCHEMA_MAJOR = 1  # mirrors benchjson::kSchemaVersion


def collect(paths):
    """Extract the gated metrics from bench NDJSON files."""
    table2_search, table2_total = [], []
    best_rps, warm_rps, netload_rps, drift_speedup = None, None, None, None
    symmetry_speedup, cp_speedup = None, None
    for path in paths:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line.startswith('{"bench"'):
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if int(rec.get("v", 1)) > SCHEMA_MAJOR:
                    sys.exit(f"error: bench record schema v{rec['v']} is newer "
                             f"than this gate understands (v{SCHEMA_MAJOR})")
                name = rec.get("bench")
                if name == "table2":
                    if "total_ms" in rec:
                        table2_total.append(float(rec["total_ms"]))
                    stats = rec.get("stats") or {}
                    if rec.get("plan_found") and "time_search_ms" in stats:
                        table2_search.append(float(stats["time_search_ms"]))
                elif name == "throughput":
                    rps = float(rec.get("rps", 0.0))
                    best_rps = rps if best_rps is None else max(best_rps, rps)
                elif name == "throughput_cache" and rec.get("cache") == "warm":
                    warm_rps = float(rec.get("rps", 0.0))
                elif name == "netload":
                    rps = float(rec.get("rps", 0.0))
                    netload_rps = (rps if netload_rps is None
                                   else max(netload_rps, rps))
                elif name == "driftload":
                    sp = float(rec.get("speedup", 0.0))
                    drift_speedup = (sp if drift_speedup is None
                                     else max(drift_speedup, sp))
                elif name == "symmetry":
                    sp = float(rec.get("speedup", 0.0))
                    symmetry_speedup = (sp if symmetry_speedup is None
                                        else max(symmetry_speedup, sp))
                elif name == "cp" and "speedup" in rec:
                    sp = float(rec["speedup"])
                    cp_speedup = (sp if cp_speedup is None
                                  else max(cp_speedup, sp))

    current = {}
    if table2_search:
        current["table2.search_ms_total"] = {
            "value": round(sum(table2_search), 3), "lower_is_better": True}
    if table2_total:
        current["table2.total_ms_total"] = {
            "value": round(sum(table2_total), 3), "lower_is_better": True}
    if best_rps is not None:
        current["throughput.best_rps"] = {
            "value": round(best_rps, 3), "lower_is_better": False}
    if warm_rps is not None:
        current["throughput.warm_rps"] = {
            "value": round(warm_rps, 3), "lower_is_better": False}
    if netload_rps is not None:
        current["netload.rps"] = {
            "value": round(netload_rps, 3), "lower_is_better": False}
    if drift_speedup is not None:
        current["driftload.speedup"] = {
            "value": round(drift_speedup, 3), "lower_is_better": False}
    if symmetry_speedup is not None:
        current["symmetry.speedup"] = {
            "value": round(symmetry_speedup, 3), "lower_is_better": False}
    if cp_speedup is not None:
        current["cp.speedup"] = {
            "value": round(cp_speedup, 3), "lower_is_better": False}
    return current


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="+", help="bench NDJSON file(s)")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE)
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from this run instead of gating")
    ap.add_argument("--tolerance", type=float,
                    default=float(os.environ.get("PERF_GATE_TOLERANCE", "0.30")),
                    help="allowed relative regression (default 0.30)")
    args = ap.parse_args()

    current = collect(args.files)
    if not current:
        sys.exit("error: no gateable bench records found in the input")

    if args.update:
        os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump({"schema": SCHEMA_MAJOR, "metrics": current}, fh,
                      indent=2, sort_keys=True)
            fh.write("\n")
        print(f"perf_gate: baseline updated with {len(current)} metric(s) "
              f"-> {args.baseline}")
        return 0

    try:
        with open(args.baseline, encoding="utf-8") as fh:
            baseline = json.load(fh)["metrics"]
    except (OSError, KeyError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read baseline {args.baseline}: {e} "
                 "(run with --update to create it)")

    failures = []
    for name, cur in sorted(current.items()):
        base = baseline.get(name)
        if base is None:
            failures.append(f"{name}: not in baseline (run --update)")
            continue
        cur_v, base_v = cur["value"], float(base["value"])
        if base_v <= 0:
            continue  # nothing meaningful to compare against
        if cur["lower_is_better"]:
            ratio = cur_v / base_v
            verdict = ratio > 1.0 + args.tolerance
            direction = "slower"
        else:
            ratio = base_v / cur_v if cur_v > 0 else float("inf")
            verdict = ratio > 1.0 + args.tolerance
            direction = "lower"
        status = "FAIL" if verdict else "ok"
        print(f"perf_gate: {status:4s} {name}: current {cur_v:g} vs "
              f"baseline {base_v:g} ({(ratio - 1.0) * 100.0:+.1f}% {direction}, "
              f"tolerance {args.tolerance * 100.0:.0f}%)")
        if verdict:
            failures.append(name)

    if failures:
        print(f"perf_gate: {len(failures)} regression(s): {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print("perf_gate: all metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
