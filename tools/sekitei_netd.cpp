// Network-facing planning daemon: serve one component domain over the
// length-prefixed NDJSON wire protocol (service/wire.hpp) until told to
// drain.
//
//   $ ./sekitei_netd <domain.sk> [--port N] [--jobs N] [--deadline-ms D]
//                    [--max-pending N] [--quota-conn N] [--quota-global N]
//                    [--idle-timeout-ms D] [--max-frame-bytes N]
//                    [--drain-ms D] [--cache-capacity N] [--preflight]
//                    [--access-log PATH] [--metrics-every-ms D] [--log <level>]
//   $ ./sekitei_netd --probe --port N
//
// --port            listen port (default 0 = ephemeral; the bound port is
//                   printed, so 0 is what tests and CI use)
// --deadline-ms     engine default deadline applied to requests without one
// --max-pending     engine admission control (process protection)
// --quota-conn      per-connection in-flight cap (default 16; 0 = unbounded)
// --quota-global    global in-flight cap; also turns on fair-share division
//                   between connections (server/quota.hpp)
// --idle-timeout-ms close a connection idle this long with nothing in flight
// --drain-ms        budget granted to in-flight requests on SIGTERM/SIGINT
// --access-log      append one NDJSON record per served request (PATH, or
//                   "-" for stderr); sekitei_stats aggregates these
// --metrics-every-ms  periodic registry snapshots to stderr while serving
// --probe           client mode: send healthz + stats to a running daemon on
//                   --port, print both bodies, exit 0 when healthy
//
// Startup prints exactly one line to stdout and flushes it:
//
//   {"netd":"listening","port":43121,"pid":12345}
//
// On SIGTERM/SIGINT the daemon drains gracefully (see server/daemon.hpp),
// writes a final metrics snapshot to stderr, and exits 0; a second signal
// during the drain escalates to a hard stop (still exit 0 — every accepted
// request was answered).
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "server/client.hpp"
#include "server/daemon.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/metrics.hpp"
#include "support/retry.hpp"
#include "support/signal_flag.hpp"

namespace {

std::string slurp(const char* path) {
  std::ifstream in(path);
  if (!in) sekitei::raise(std::string("cannot open ") + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

int run_probe(std::uint16_t port) {
  using sekitei::server::FrameClient;
  try {
    FrameClient client(port);
    if (!client.send(std::string("{\"op\":\"healthz\"}")) ||
        !client.send(std::string("{\"op\":\"stats\"}"))) {
      std::fprintf(stderr, "probe: send failed\n");
      return 1;
    }
    for (int i = 0; i < 2; ++i) {
      std::string body;
      if (client.recv_frame(body, 5000.0) != FrameClient::Recv::Frame) {
        std::fprintf(stderr, "probe: no response frame\n");
        return 1;
      }
      std::printf("%s\n", body.c_str());
    }
    return 0;
  } catch (const sekitei::Error& e) {
    std::fprintf(stderr, "probe: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sekitei;

  server::Daemon::Options opt;
  double metrics_every_ms = 0.0;
  const char* access_log_path = nullptr;
  const char* domain_path = nullptr;
  bool probe = false;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      opt.port = static_cast<std::uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      opt.engine.workers = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      opt.engine.default_deadline_ms = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--max-pending") == 0 && i + 1 < argc) {
      opt.engine.max_pending = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--cache-capacity") == 0 && i + 1 < argc) {
      opt.engine.cache_capacity = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--quota-conn") == 0 && i + 1 < argc) {
      opt.quota.per_conn_inflight = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--quota-global") == 0 && i + 1 < argc) {
      opt.quota.global_inflight = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--idle-timeout-ms") == 0 && i + 1 < argc) {
      opt.session.idle_timeout_ms = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--max-frame-bytes") == 0 && i + 1 < argc) {
      opt.session.max_frame_bytes = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--drain-ms") == 0 && i + 1 < argc) {
      opt.drain_deadline_ms = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--preflight") == 0) {
      opt.engine.preflight = true;
    } else if (std::strcmp(argv[i], "--access-log") == 0 && i + 1 < argc) {
      access_log_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-every-ms") == 0 && i + 1 < argc) {
      metrics_every_ms = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--probe") == 0) {
      probe = true;
    } else if (std::strcmp(argv[i], "--log") == 0 && i + 1 < argc) {
      const char* name = argv[++i];
#ifndef SEKITEI_LOG_DISABLED
      const log::Level lvl = log::parse_level(name);
      log::set_level(lvl);
      if (lvl != log::Level::Off) {
        log::add_sink(std::make_shared<log::StreamSink>(stderr));
      } else if (std::strcmp(name, "off") != 0) {
        std::fprintf(stderr, "unknown log level '%s'\n", name);
        return 2;
      }
#else
      std::fprintf(stderr, "--log %s ignored: built with SEKITEI_LOG_DISABLED\n", name);
#endif
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return 2;
    } else if (domain_path == nullptr) {
      domain_path = argv[i];
    } else {
      std::fprintf(stderr, "unexpected argument '%s'\n", argv[i]);
      return 2;
    }
  }

  if (probe) {
    if (opt.port == 0) {
      std::fprintf(stderr, "--probe needs --port\n");
      return 2;
    }
    return run_probe(opt.port);
  }

  if (domain_path == nullptr) {
    std::fprintf(stderr,
                 "usage: %s <domain.sk> [--port N] [--jobs N] [--deadline-ms D]\n"
                 "          [--max-pending N] [--quota-conn N] [--quota-global N]\n"
                 "          [--idle-timeout-ms D] [--max-frame-bytes N] [--drain-ms D]\n"
                 "          [--cache-capacity N] [--preflight] [--access-log PATH]\n"
                 "          [--metrics-every-ms D] [--log <level>]\n"
                 "       %s --probe --port N\n",
                 argv[0], argv[0]);
    return 2;
  }

  std::FILE* access_log = nullptr;
  try {
    opt.domain_text = slurp(domain_path);
    if (access_log_path != nullptr) {
      if (std::strcmp(access_log_path, "-") == 0) {
        access_log = stderr;
      } else {
        access_log = std::fopen(access_log_path, "a");
        if (access_log == nullptr) raise(std::string("cannot open ") + access_log_path);
      }
      opt.access_log = access_log;
    }

    signal_flag::install({SIGTERM, SIGINT});

    const double drain_ms = opt.drain_deadline_ms;
    server::Daemon daemon(std::move(opt));
    daemon.start();

    std::printf("{\"netd\":\"listening\",\"port\":%u,\"pid\":%ld}\n",
                static_cast<unsigned>(daemon.port()),
                static_cast<long>(::getpid()));
    std::fflush(stdout);

    std::unique_ptr<metrics::Flusher> flusher;
    if (metrics_every_ms > 0.0) {
      flusher = std::make_unique<metrics::Flusher>(metrics::registry(), stderr,
                                                   metrics_every_ms);
    }

    while (signal_flag::fired() == 0) sleep_ms(50.0);
    const int sig = signal_flag::fired();
    std::fprintf(stderr, "sekitei_netd: signal %d, draining (budget %.0f ms)\n",
                 sig, drain_ms);
    const bool clean = daemon.drain();

    if (flusher) {
      flusher->stop();
    } else {
      const std::string snap = metrics::registry().to_ndjson(metrics::wall_ms());
      std::fwrite(snap.data(), 1, snap.size(), stderr);
    }
    std::fprintf(stderr, "sekitei_netd: drained %s, served %llu requests over %llu connections\n",
                 clean ? "cleanly" : "with escalation",
                 static_cast<unsigned long long>(daemon.requests_served()),
                 static_cast<unsigned long long>(daemon.connections_accepted()));
    if (access_log != nullptr && access_log != stderr) std::fclose(access_log);
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    if (access_log != nullptr && access_log != stderr) std::fclose(access_log);
    return 2;
  }
}
