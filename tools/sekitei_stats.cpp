// Offline observability aggregator: tail NDJSON produced by the other
// drivers — sekitei_serve per-request records and --metrics snapshots,
// bench `{"bench":...}` lines, flight-recorder dumps — and render compact
// latency / outcome / metric summary tables on stdout.
//
//   $ ./sekitei_serve dom.sk q*.sk --metrics > run.ndjson
//   $ ./sekitei_stats run.ndjson
//   $ ./sekitei_fuzz --runs 50 | ./sekitei_stats      # reads stdin too
//
// Dispatch is on the leading key of each line's object:
//   "access"   daemon (sekitei_netd) per-request access-log record ->
//              per-session request counts + outcome tally + exact solve/wait
//              percentiles + response bytes
//   "request"  serve driver per-request record -> outcome counts + exact
//              solve/wait percentiles + cache hit tally
//   "metric"   registry snapshot line -> last value per series wins (a
//              periodic flusher emits many snapshots; the newest is the
//              state of record)
//   "bench"    bench record -> per-name count; netload / netload_direct
//              records additionally surface their headline numbers (rps,
//              percentiles, losses) and the wire/direct rps ratio, and
//              driftload records surface the repaired-vs-replanned latency
//              comparison
//              (repair request records — those with a "repaired" key — also
//              get their own digest: latency split by repaired/replanned,
//              migration/reconnect/disruption tallies, and a row counting
//              pre-flight-rejected requests — unsurvivable drift certified
//              before any search ran)
//   "flight"   flight-recorder dump header -> listed individually
// Anything else (stats records, flight samples) is counted and skipped.
// Malformed lines are tolerated and tallied to stderr; --strict makes them
// fatal (exit 2, also used for usage/IO errors).
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "support/json_reader.hpp"

namespace {

using sekitei::json::Value;

struct SeriesValue {
  std::string type;  // "counter" | "gauge" | "histogram"
  double value = 0.0;
  std::uint64_t count = 0;
  double sum = 0.0, p50 = 0.0, p90 = 0.0, p99 = 0.0;
};

struct Tally {
  std::size_t lines = 0, malformed = 0, other = 0;
  std::size_t requests = 0, metric_lines = 0, snapshots_seen = 0;
  std::map<std::string, std::size_t> outcomes;
  std::map<std::string, std::size_t> ladders;
  std::size_t cache_hits = 0;
  std::vector<double> solve_ms, wait_ms;
  struct Repair {
    std::size_t records = 0, repaired = 0;
    std::size_t preflight_rejected = 0;  // unsurvivable drift, cut before search
    std::uint64_t migrations = 0, reconnects = 0, disruption = 0;
    std::vector<double> repaired_ms, replanned_ms;  // solve_ms split by path
  } repair;
  std::map<std::string, SeriesValue> series;  // rendered "name{labels}" -> last value
  std::map<std::string, std::size_t> benches;
  struct Access {
    std::size_t records = 0;
    std::map<std::string, std::size_t> per_session;  // session id -> requests
    std::map<std::string, std::size_t> outcomes;
    std::vector<double> solve_ms, wait_ms;
    std::uint64_t bytes = 0;
  } access;
  struct NetLoad {
    bool seen = false;
    double rps = 0.0, p50 = 0.0, p90 = 0.0, p99 = 0.0;
    std::uint64_t lost = 0, requests = 0;
  } netload, netload_direct;  // last record of each wins
  struct DriftLoad {
    bool seen = false;
    double repair_p50 = 0.0, replan_p50 = 0.0, speedup = 0.0;
    std::uint64_t pairs = 0, repaired = 0, disruption = 0, lost = 0;
  } driftload;  // last record wins
  struct Flight {
    std::string id, outcome;
    std::uint64_t samples = 0, recorded = 0;
  };
  std::vector<Flight> flights;
};

double num_or(const Value& v, const char* key, double fallback) {
  const Value* f = v.find(key);
  return f != nullptr && f->is_number() ? f->number : fallback;
}

std::string str_or(const Value& v, const char* key, const char* fallback) {
  const Value* f = v.find(key);
  return f != nullptr && f->is_string() ? f->str : std::string(fallback);
}

/// Stable series key: name plus the sorted labels ("name{k=v,...}"), the
/// same rendering the registry uses internally.
std::string series_key(const Value& v) {
  std::string key = str_or(v, "metric", "?");
  const Value* labels = v.find("labels");
  if (labels != nullptr && labels->is_object() && !labels->obj->empty()) {
    key += '{';
    bool first = true;
    for (const auto& [k, lv] : *labels->obj) {  // std::map: already sorted
      if (!first) key += ',';
      first = false;
      key += k;
      key += '=';
      key += lv.is_string() ? lv.str : std::string("?");
    }
    key += '}';
  }
  return key;
}

void take_line(Tally& t, const std::string& line) {
  if (line.empty()) return;
  ++t.lines;
  Value v;
  if (!sekitei::json::parse(line, v) || !v.is_object()) {
    ++t.malformed;
    return;
  }
  // Before the "request" check: access records carry a "request" key too.
  if (v.find("access") != nullptr) {
    ++t.access.records;
    ++t.access.per_session[std::to_string(
        static_cast<long long>(num_or(v, "session", -1.0)))];
    ++t.access.outcomes[str_or(v, "outcome", "?")];
    t.access.solve_ms.push_back(num_or(v, "solve_ms", 0.0));
    t.access.wait_ms.push_back(num_or(v, "wait_ms", 0.0));
    t.access.bytes += static_cast<std::uint64_t>(num_or(v, "bytes", 0.0));
    return;
  }
  if (v.find("request") != nullptr) {
    ++t.requests;
    ++t.outcomes[str_or(v, "outcome", "?")];
    ++t.ladders[str_or(v, "ladder", "?")];
    const Value* hit = v.find("cache_hit");
    if (hit != nullptr && hit->is_bool() && hit->boolean) ++t.cache_hits;
    const double solve = num_or(v, "solve_ms", 0.0);
    t.solve_ms.push_back(solve);
    t.wait_ms.push_back(num_or(v, "wait_ms", 0.0));
    // Repair records carry a "repaired" flag; split their latency by whether
    // the survivors held or the ladder fell to a full replan.
    if (const Value* rep = v.find("repaired"); rep != nullptr && rep->is_bool()) {
      ++t.repair.records;
      // Pre-flight-rejected requests never entered search: they are neither
      // "repaired in place" nor "replanned", so keep them out of both
      // latency splits and count them on their own digest row.
      const Value* cut = v.find("repair_preflight_rejected");
      if (cut != nullptr && cut->is_bool() && cut->boolean) {
        ++t.repair.preflight_rejected;
      } else if (rep->boolean) {
        ++t.repair.repaired;
        t.repair.repaired_ms.push_back(solve);
      } else {
        t.repair.replanned_ms.push_back(solve);
      }
      t.repair.migrations += static_cast<std::uint64_t>(num_or(v, "migrations", 0.0));
      t.repair.reconnects += static_cast<std::uint64_t>(num_or(v, "reconnects", 0.0));
      t.repair.disruption += static_cast<std::uint64_t>(num_or(v, "disruption", 0.0));
    }
    return;
  }
  if (const Value* name = v.find("metric"); name != nullptr) {
    ++t.metric_lines;
    // Snapshot boundary heuristic: series are emitted in sorted order, so a
    // line for the lexicographically-first series starts a new snapshot.
    SeriesValue sv;
    sv.type = str_or(v, "type", "?");
    sv.value = num_or(v, "value", 0.0);
    sv.count = static_cast<std::uint64_t>(num_or(v, "count", 0.0));
    sv.sum = num_or(v, "sum", 0.0);
    sv.p50 = num_or(v, "p50", 0.0);
    sv.p90 = num_or(v, "p90", 0.0);
    sv.p99 = num_or(v, "p99", 0.0);
    const std::string key = series_key(v);
    if (!t.series.empty() && key <= t.series.begin()->first) ++t.snapshots_seen;
    if (t.series.empty()) t.snapshots_seen = 1;
    t.series[key] = sv;
    return;
  }
  if (v.find("bench") != nullptr) {
    const std::string name = str_or(v, "bench", "?");
    ++t.benches[name];
    if (name == "netload" || name == "netload_direct") {
      Tally::NetLoad& nl = name == "netload" ? t.netload : t.netload_direct;
      nl.seen = true;
      nl.rps = num_or(v, "rps", 0.0);
      nl.p50 = num_or(v, "p50_ms", 0.0);
      nl.p90 = num_or(v, "p90_ms", 0.0);
      nl.p99 = num_or(v, "p99_ms", 0.0);
      nl.lost = static_cast<std::uint64_t>(num_or(v, "lost", 0.0));
      nl.requests = static_cast<std::uint64_t>(num_or(v, "requests", 0.0));
    }
    if (name == "driftload") {
      Tally::DriftLoad& dl = t.driftload;
      dl.seen = true;
      dl.repair_p50 = num_or(v, "repair_p50_ms", 0.0);
      dl.replan_p50 = num_or(v, "replan_p50_ms", 0.0);
      dl.speedup = num_or(v, "speedup", 0.0);
      dl.pairs = static_cast<std::uint64_t>(num_or(v, "pairs", 0.0));
      dl.repaired = static_cast<std::uint64_t>(num_or(v, "repaired", 0.0));
      dl.disruption = static_cast<std::uint64_t>(num_or(v, "disruption", 0.0));
      dl.lost = static_cast<std::uint64_t>(num_or(v, "lost", 0.0));
    }
    return;
  }
  if (const Value* flight = v.find("flight"); flight != nullptr) {
    Tally::Flight f;
    f.id = flight->is_string() ? flight->str : "?";
    f.outcome = str_or(v, "outcome", "?");
    f.samples = static_cast<std::uint64_t>(num_or(v, "samples", 0.0));
    f.recorded = static_cast<std::uint64_t>(num_or(v, "recorded", 0.0));
    t.flights.push_back(std::move(f));
    return;
  }
  ++t.other;
}

/// Exact percentile (nearest-rank) over the collected samples.
double pct(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t n = sorted.size();
  std::size_t rank = static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

void print_latency_row(const char* label, std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  std::printf("  %-10s p50 %9.3f  p90 %9.3f  p99 %9.3f  max %9.3f  (ms)\n", label,
              pct(samples, 0.50), pct(samples, 0.90), pct(samples, 0.99),
              samples.empty() ? 0.0 : samples.back());
}

void report(const Tally& t) {
  if (t.requests != 0) {
    std::printf("== requests (%zu) ==\n", t.requests);
    for (const auto& [name, count] : t.outcomes) {
      std::printf("  %-20s %8zu\n", name.c_str(), count);
    }
    bool ladder_shown = false;
    for (const auto& [name, count] : t.ladders) {
      if (name == "primary" || name == "?") continue;
      if (!ladder_shown) std::printf("  ladder:\n");
      ladder_shown = true;
      std::printf("    %-18s %8zu\n", name.c_str(), count);
    }
    std::printf("  cache: %zu hits / %zu misses\n", t.cache_hits, t.requests - t.cache_hits);
    print_latency_row("solve_ms", t.solve_ms);
    print_latency_row("wait_ms", t.wait_ms);
  }
  if (t.repair.records != 0) {
    std::printf("== repairs (%zu of the requests) ==\n", t.repair.records);
    std::printf("  repaired in place %zu, fell to full replan %zu\n", t.repair.repaired,
                t.repair.records - t.repair.repaired - t.repair.preflight_rejected);
    if (t.repair.preflight_rejected != 0) {
      std::printf("  pre-flight rejected %zu (unsurvivable drift, no search run)\n",
                  t.repair.preflight_rejected);
    }
    std::printf("  churn: %" PRIu64 " migrations, %" PRIu64 " reconnects, %" PRIu64
                " disruption\n",
                t.repair.migrations, t.repair.reconnects, t.repair.disruption);
    print_latency_row("repaired", t.repair.repaired_ms);
    print_latency_row("replanned", t.repair.replanned_ms);
  }
  if (t.access.records != 0) {
    std::printf("== daemon access log (%zu requests, %zu sessions) ==\n",
                t.access.records, t.access.per_session.size());
    for (const auto& [name, count] : t.access.outcomes) {
      std::printf("  %-20s %8zu\n", name.c_str(), count);
    }
    std::size_t busiest = 0;
    for (const auto& [id, count] : t.access.per_session) {
      busiest = std::max(busiest, count);
    }
    std::printf("  busiest session: %zu requests; %" PRIu64 " response bytes total\n",
                busiest, t.access.bytes);
    print_latency_row("solve_ms", t.access.solve_ms);
    print_latency_row("wait_ms", t.access.wait_ms);
  }
  if (t.netload.seen) {
    std::printf("== netload ==\n");
    std::printf("  wire    %9.1f req/s  p50 %9.3f  p90 %9.3f  p99 %9.3f  (%" PRIu64
                " requests, %" PRIu64 " lost)\n",
                t.netload.rps, t.netload.p50, t.netload.p90, t.netload.p99,
                t.netload.requests, t.netload.lost);
    if (t.netload_direct.seen) {
      std::printf("  direct  %9.1f req/s\n", t.netload_direct.rps);
      if (t.netload_direct.rps > 0.0) {
        std::printf("  wire/direct ratio %.3f\n", t.netload.rps / t.netload_direct.rps);
      }
    }
  }
  if (t.driftload.seen) {
    std::printf("== driftload ==\n");
    std::printf("  %" PRIu64 " pairs (%" PRIu64 " repaired in place, %" PRIu64
                " disruption, %" PRIu64 " lost)\n",
                t.driftload.pairs, t.driftload.repaired, t.driftload.disruption,
                t.driftload.lost);
    std::printf("  repair p50 %9.3f ms vs replan p50 %9.3f ms (speedup %.2fx)\n",
                t.driftload.repair_p50, t.driftload.replan_p50, t.driftload.speedup);
  }
  if (!t.series.empty()) {
    std::printf("== metrics (last of %zu snapshot%s, %zu series) ==\n", t.snapshots_seen,
                t.snapshots_seen == 1 ? "" : "s", t.series.size());
    for (const auto& [key, sv] : t.series) {
      if (sv.type == "histogram") {
        std::printf("  %-46s count %8" PRIu64 "  p50 %9.3f  p90 %9.3f  p99 %9.3f\n",
                    key.c_str(), sv.count, sv.p50, sv.p90, sv.p99);
      } else {
        std::printf("  %-46s %14.0f\n", key.c_str(), sv.value);
      }
    }
  }
  if (!t.benches.empty()) {
    std::printf("== bench records ==\n");
    for (const auto& [name, count] : t.benches) {
      std::printf("  %-32s %8zu\n", name.c_str(), count);
    }
  }
  if (!t.flights.empty()) {
    std::printf("== flight recordings (%zu) ==\n", t.flights.size());
    for (const Tally::Flight& f : t.flights) {
      std::printf("  %-32s %-18s %" PRIu64 " samples (%" PRIu64 " recorded)\n", f.id.c_str(),
                  f.outcome.c_str(), f.samples, f.recorded);
    }
  }
  if (t.other != 0) std::printf("(%zu other NDJSON lines skipped)\n", t.other);
  if (t.requests == 0 && t.access.records == 0 && t.series.empty() &&
      t.benches.empty() && t.flights.empty()) {
    std::printf("no recognized records in %zu lines\n", t.lines);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::fprintf(stderr, "usage: %s [--strict] [file.ndjson ...]   (no files: read stdin)\n",
                   argv[0]);
      return 2;
    } else if (std::strcmp(argv[i], "-") != 0 && argv[i][0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return 2;
    } else {
      files.push_back(argv[i]);
    }
  }

  Tally tally;
  std::string line;
  if (files.empty()) {
    while (std::getline(std::cin, line)) take_line(tally, line);
  } else {
    for (const char* path : files) {
      if (std::strcmp(path, "-") == 0) {
        while (std::getline(std::cin, line)) take_line(tally, line);
        continue;
      }
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "error: cannot open %s\n", path);
        return 2;
      }
      while (std::getline(in, line)) take_line(tally, line);
    }
  }

  report(tally);
  if (tally.malformed != 0) {
    std::fprintf(stderr, "%zu malformed line%s\n", tally.malformed,
                 tally.malformed == 1 ? "" : "s");
    if (strict) return 2;
  }
  return 0;
}
