// Open-loop load generator for the planning daemon (tools/sekitei_netd).
//
//   $ ./sekitei_load <domain.sk> <problem.sk>... --port N [--connections C]
//                    [--requests N] [--rate R] [--warmup K] [--deadline-ms D]
//                    [--seed S] [--retries N] [--retry-base-ms D]
//                    [--compare-direct] [--jobs N]
//
// Offered load is OPEN-LOOP: request arrival times are drawn up front from a
// Poisson process of `--rate` requests/second (seeded, so two identical
// invocations offer the identical schedule) and honored regardless of how
// fast responses come back — the generator measures the daemon, the daemon
// does not pace the generator.  Arrivals are split round-robin across
// `--connections` pipelined connections; responses correlate by request id,
// so out-of-order completion is expected and handled.
//
// The first `--warmup` requests prime the daemon's parse cache and the
// engine's compiled-problem cache and are excluded from the measurement
// window; latency percentiles (p50/p90/p99) come from the process-wide
// metrics histogram "netload.latency_ms".  Quota/admission rejections are
// retried with the shared deterministic jittered backoff (support/retry.hpp)
// up to `--retries` times.
//
// Output: one versioned bench record per run on stdout —
//
//   {"bench":"netload","v":1,...,"rps":...,"p50_ms":...,"p99_ms":...}
//
// (tools/perf_gate.py gates netload.rps against bench/baselines/). With
// --compare-direct the same batch is also run through an in-process
// PlanningEngine at `--jobs` workers, a "netload_direct" record is emitted,
// and the rps ratio (wire/direct) lands on stderr — the number the loopback
// acceptance bound (>= 0.8x) is checked against.
//
// --drift switches to the CLOSED-LOOP drift stream: solve, mutate the solved
// instance with a seeded damage delta, then submit the same damage twice —
// with survivors (repair) and without (from-scratch replan) — and emit a
// "driftload" bench record comparing the two latency distributions
// (perf_gate.py gates driftload.speedup).
//
// Exit codes: 0 when every measured request was answered, 1 when any went
// unanswered (connection died), 2 on usage/input errors.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/bench_json.hpp"
#include "model/compile.hpp"
#include "repair/repair.hpp"
#include "server/client.hpp"
#include "service/engine.hpp"
#include "support/error.hpp"
#include "support/json_reader.hpp"
#include "support/metrics.hpp"
#include "support/retry.hpp"
#include "support/rng.hpp"
#include "support/stop_token.hpp"

namespace {

using namespace sekitei;

std::string slurp(const char* path) {
  std::ifstream in(path);
  if (!in) raise(std::string("cannot open ") + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

struct Config {
  std::uint16_t port = 0;
  std::size_t connections = 4;
  std::size_t requests = 200;
  double rate = 100.0;  // offered requests/second across all connections
  std::size_t warmup = 20;
  double deadline_ms = 0.0;
  std::uint64_t seed = 0x10adULL;
  std::size_t retries = 3;
  double retry_base_ms = 5.0;
  bool compare_direct = false;
  std::size_t jobs = 0;
  double recv_grace_ms = 30000.0;  // give up on a silent daemon eventually
  bool drift = false;  // closed-loop solve -> damage -> repair/replan triples
};

struct Planned {
  std::size_t global_idx;  // < warmup => excluded from the measurement
  std::size_t file_idx;
  std::int64_t due_ns;  // absolute arrival time (offset from run start)
};

struct Shared {
  std::atomic<std::uint64_t> answered{0};
  std::atomic<std::uint64_t> measured{0};
  std::atomic<std::uint64_t> solved{0};
  std::atomic<std::uint64_t> degraded{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> other{0};
  std::atomic<std::uint64_t> retried{0};
  std::atomic<std::uint64_t> lost{0};
  // Measurement window endpoints (epoch ns; min/max folded in by CAS).
  std::atomic<std::int64_t> window_begin{0};
  std::atomic<std::int64_t> window_end{0};
};

void fold_min(std::atomic<std::int64_t>& a, std::int64_t v) {
  std::int64_t cur = a.load(std::memory_order_relaxed);
  while ((cur == 0 || v < cur) &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void fold_max(std::atomic<std::int64_t>& a, std::int64_t v) {
  std::int64_t cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Extracts the string value of `key` from a response record.  The response
/// schema is flat and our writer escapes quotes, so a plain scan suffices
/// for the two keys the generator needs (id + outcome).
std::string json_field(const std::string& body, const char* key) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const std::size_t at = body.find(needle);
  if (at == std::string::npos) return {};
  const std::size_t from = at + needle.size();
  std::string out;
  for (std::size_t i = from; i < body.size(); ++i) {
    if (body[i] == '\\' && i + 1 < body.size()) {
      out.push_back(body[++i]);
      continue;
    }
    if (body[i] == '"') break;
    out.push_back(body[i]);
  }
  return out;
}

struct InFlight {
  std::size_t global_idx;
  std::size_t file_idx;
  std::int64_t sent_ns;
  std::uint32_t attempts;
};

void run_connection(const Config& cfg, std::size_t conn_idx,
                    std::vector<Planned> schedule,
                    const std::vector<std::string>& problem_texts,
                    std::int64_t start_ns, Shared& shared,
                    metrics::Histogram& latency_hist) {
  try {
    server::FrameClient client(cfg.port);
    Backoff backoff({.base_ms = cfg.retry_base_ms},
                    Backoff::kDefaultSeed + conn_idx);
    std::unordered_map<std::string, InFlight> inflight;
    struct Retry {
      std::int64_t due_ns;
      std::string id;
      service::wire::WireRequest req;
      InFlight meta;
    };
    std::vector<Retry> retries;
    std::size_t next = 0;  // schedule cursor

    auto send_one = [&](const std::string& id,
                        service::wire::WireRequest&& req, InFlight meta) {
      meta.sent_ns = StopSource::now_epoch_ns();
      if (meta.global_idx >= cfg.warmup) {
        fold_min(shared.window_begin, meta.sent_ns);
      }
      inflight[id] = meta;
      return client.send(req);
    };

    auto make_request = [&](const std::string& id, std::size_t file_idx) {
      service::wire::WireRequest req;
      req.op = service::wire::WireRequest::Op::Plan;
      req.id = id;
      req.problem_text = problem_texts[file_idx];
      req.deadline_ms = cfg.deadline_ms;
      return req;
    };

    const std::int64_t grace_ns =
        static_cast<std::int64_t>(cfg.recv_grace_ms * 1e6);
    std::int64_t last_progress = StopSource::now_epoch_ns();

    while (!inflight.empty() || next < schedule.size() || !retries.empty()) {
      const std::int64_t now = StopSource::now_epoch_ns();

      // Honor the offered schedule first — open loop.
      if (next < schedule.size() && start_ns + schedule[next].due_ns <= now) {
        const Planned& p = schedule[next];
        const std::string id =
            "c" + std::to_string(conn_idx) + "-" + std::to_string(p.global_idx);
        if (!send_one(id, make_request(id, p.file_idx),
                      {p.global_idx, p.file_idx, 0, 1})) {
          break;  // peer gone; inflight accounting below
        }
        ++next;
        last_progress = now;
        continue;
      }
      if (!retries.empty()) {
        auto due = std::min_element(
            retries.begin(), retries.end(),
            [](const Retry& a, const Retry& b) { return a.due_ns < b.due_ns; });
        if (due->due_ns <= now) {
          Retry r = std::move(*due);
          retries.erase(due);
          if (!send_one(r.id, std::move(r.req), r.meta)) break;
          last_progress = now;
          continue;
        }
      }

      // Nothing due: wait for responses until the next event.
      double wait_ms = 50.0;
      if (next < schedule.size()) {
        wait_ms = std::min(
            wait_ms,
            static_cast<double>(start_ns + schedule[next].due_ns - now) / 1e6);
      }
      for (const Retry& r : retries) {
        wait_ms = std::min(wait_ms, static_cast<double>(r.due_ns - now) / 1e6);
      }
      wait_ms = std::max(wait_ms, 1.0);

      std::string body;
      const auto rs = client.recv_frame(body, wait_ms);
      if (rs == server::FrameClient::Recv::Closed ||
          rs == server::FrameClient::Recv::Error) {
        break;
      }
      if (rs == server::FrameClient::Recv::Timeout) {
        if (inflight.empty() && next >= schedule.size() && retries.empty()) break;
        if (StopSource::now_epoch_ns() - last_progress > grace_ns) break;
        continue;
      }
      last_progress = StopSource::now_epoch_ns();

      const std::string id = json_field(body, "request");
      const auto it = inflight.find(id);
      if (it == inflight.end()) continue;  // daemon notice (e.g. unframed reject)
      InFlight meta = it->second;
      inflight.erase(it);

      const std::string outcome = json_field(body, "outcome");
      const bool quota_reject =
          outcome == "rejected" &&
          body.find("quota exceeded") != std::string::npos;
      if (quota_reject && meta.attempts <= cfg.retries) {
        shared.retried.fetch_add(1, std::memory_order_relaxed);
        Retry r;
        r.id = id;
        r.req = make_request(id, meta.file_idx);
        r.meta = meta;
        r.meta.attempts = meta.attempts + 1;
        r.due_ns = StopSource::now_epoch_ns() +
                   static_cast<std::int64_t>(
                       backoff.next_delay_ms(meta.attempts - 1) * 1e6);
        retries.push_back(std::move(r));
        continue;
      }

      shared.answered.fetch_add(1, std::memory_order_relaxed);
      if (outcome == "solved") {
        shared.solved.fetch_add(1, std::memory_order_relaxed);
      } else if (outcome == "degraded") {
        shared.degraded.fetch_add(1, std::memory_order_relaxed);
      } else if (outcome == "rejected") {
        shared.rejected.fetch_add(1, std::memory_order_relaxed);
      } else {
        shared.other.fetch_add(1, std::memory_order_relaxed);
      }
      if (meta.global_idx >= cfg.warmup) {
        const std::int64_t done = StopSource::now_epoch_ns();
        latency_hist.observe(static_cast<double>(done - meta.sent_ns) / 1e6);
        fold_max(shared.window_end, done);
        shared.measured.fetch_add(1, std::memory_order_relaxed);
      }
    }
    const std::uint64_t unanswered =
        inflight.size() + (schedule.size() - next) + retries.size();
    if (unanswered > 0) shared.lost.fetch_add(unanswered, std::memory_order_relaxed);
  } catch (const Error& e) {
    std::fprintf(stderr, "sekitei_load: connection %zu: %s\n", conn_idx, e.what());
    shared.lost.fetch_add(schedule.size(), std::memory_order_relaxed);
  }
}

/// Nearest-rank percentile of a latency sample.
double pctl(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto rank =
      static_cast<std::size_t>(std::ceil(q * static_cast<double>(v.size())));
  return v[rank == 0 ? 0 : rank - 1];
}

/// Renders an id-keyed Damage as the wire's name-keyed shape.
service::wire::WireDamage to_wire_damage(const net::Network& net,
                                         const repair::Damage& d) {
  service::wire::WireDamage w;
  for (const NodeId n : d.failed_nodes) w.failed_nodes.push_back(net.node(n).name);
  for (const LinkId l : d.failed_links) {
    w.failed_links.emplace_back(net.node(net.link(l).a).name,
                                net.node(net.link(l).b).name);
  }
  for (const repair::DegradedNode& dn : d.degraded_nodes) {
    w.degraded_nodes.push_back({net.node(dn.node).name, dn.resource, dn.capacity});
  }
  for (const repair::DegradedLink& dl : d.degraded_links) {
    w.degraded_links.push_back({net.node(net.link(dl.link).a).name,
                                net.node(net.link(dl.link).b).name, dl.resource,
                                dl.capacity});
  }
  return w;
}

/// Closed-loop drift stream over the wire: solve (echoing the plan), mutate
/// the solved instance with a seeded damage delta, then submit the SAME
/// damage twice — once as a repair (survivors attached) and once with no
/// prior plan (a from-scratch replan on the damaged network through the
/// identical service path).  The latency gap between the two is the price of
/// drift resilience; the "driftload" bench record carries both percentiles.
int run_drift(const Config& cfg, const std::string& domain_text,
              const std::vector<std::string>& problem_texts) {
  // Drift requests always carry a deadline: a seeded damage delta can make
  // the instance infeasible, and proving that by search is unbounded — a
  // deadline-less request would park a daemon worker indefinitely and stall
  // the closed loop behind it.  The engine's degradation ladder turns the
  // fired deadline into a deadline_exceeded answer, which the loop counts
  // as an unrepaired pair rather than a lost frame.
  const double deadline_ms = cfg.deadline_ms > 0.0 ? cfg.deadline_ms : 2000.0;
  // Parse + compile each instance once up front: seeded_drift needs the
  // compiled actions and the name-keyed wire damage needs the network.
  std::vector<std::shared_ptr<const model::LoadedProblem>> problems;
  std::vector<model::CompiledProblem> compiled;
  problems.reserve(problem_texts.size());
  for (const std::string& text : problem_texts) {
    auto lp = model::load_problem(domain_text, text);
    compiled.push_back(model::compile(lp->problem, lp->scenario));
    problems.push_back(std::move(lp));
  }

  server::FrameClient client(cfg.port);
  std::vector<double> repair_lat, replan_lat;
  std::uint64_t pairs = 0, repaired = 0, migrations = 0, disruption = 0, lost = 0;

  auto ask_ms = [&](const service::wire::WireRequest& req, json::Value& v,
                    double& ms) {
    const std::int64_t t0 = StopSource::now_epoch_ns();
    if (!client.send(req)) return false;
    std::string body;
    if (client.recv_frame(body, cfg.recv_grace_ms) != server::FrameClient::Recv::Frame) {
      return false;
    }
    ms = static_cast<double>(StopSource::now_epoch_ns() - t0) / 1e6;
    std::string err;
    return json::parse(body, v, &err) && v.is_object();
  };

  for (std::size_t i = 0; i < cfg.requests; ++i) {
    const std::size_t f = i % problem_texts.size();
    service::wire::WireRequest plan;
    plan.id = "drift-" + std::to_string(i);
    plan.problem_text = problem_texts[f];
    plan.deadline_ms = deadline_ms;
    plan.echo_plan = true;
    json::Value v;
    double ms = 0.0;
    if (!ask_ms(plan, v, ms)) {
      ++lost;
      break;
    }
    const json::Value* outcome = v.find("outcome");
    const json::Value* steps = v.find("plan_steps");
    if (outcome == nullptr || !outcome->is_string() ||
        (outcome->str != "solved" && outcome->str != "degraded") ||
        steps == nullptr || !steps->is_array()) {
      continue;  // nothing to drift from
    }
    core::Plan prior;
    for (const json::Value& e : *steps->arr) {
      if (e.is_number()) prior.steps.emplace_back(static_cast<std::uint32_t>(e.number));
    }
    std::vector<double> choices;
    if (const json::Value* c = v.find("choices"); c != nullptr && c->is_array()) {
      for (const json::Value& e : *c->arr) {
        if (e.is_number()) choices.push_back(e.number);
      }
    }
    const repair::Damage damage =
        repair::seeded_drift(compiled[f], prior, cfg.seed + i);

    service::wire::WireRequest rep;
    rep.id = plan.id + "/repair";
    rep.problem_text = problem_texts[f];
    rep.deadline_ms = deadline_ms;
    rep.repair = true;
    for (const ActionId a : prior.steps) rep.prior_plan.push_back(a.index());
    rep.choices = std::move(choices);
    rep.damage = to_wire_damage(problems[f]->net, damage);
    rep.migration_penalty = 2.0;
    json::Value rv;
    double rep_ms = 0.0;
    if (!ask_ms(rep, rv, rep_ms)) {
      ++lost;
      break;
    }

    service::wire::WireRequest rpl;
    rpl.id = plan.id + "/replan";
    rpl.problem_text = problem_texts[f];
    rpl.deadline_ms = deadline_ms;
    rpl.repair = true;  // same damage, no survivors: from-scratch replan
    rpl.damage = rep.damage;
    json::Value pv;
    double rpl_ms = 0.0;
    if (!ask_ms(rpl, pv, rpl_ms)) {
      ++lost;
      break;
    }

    ++pairs;
    if (i >= cfg.warmup) {
      repair_lat.push_back(rep_ms);
      replan_lat.push_back(rpl_ms);
    }
    if (const json::Value* b = rv.find("repaired"); b != nullptr && b->is_bool() && b->boolean) {
      ++repaired;
    }
    if (const json::Value* n = rv.find("migrations"); n != nullptr && n->is_number()) {
      migrations += static_cast<std::uint64_t>(n->number);
    }
    if (const json::Value* n = rv.find("disruption"); n != nullptr && n->is_number()) {
      disruption += static_cast<std::uint64_t>(n->number);
    }
  }

  const double repair_p50 = pctl(repair_lat, 0.50);
  const double replan_p50 = pctl(replan_lat, 0.50);
  benchjson::emit(
      "driftload",
      {benchjson::kv("requests", static_cast<std::uint64_t>(cfg.requests)),
       benchjson::kv("warmup", static_cast<std::uint64_t>(cfg.warmup)),
       benchjson::kv("pairs", pairs),
       benchjson::kv("repaired", repaired),
       benchjson::kv("migrations", migrations),
       benchjson::kv("disruption", disruption),
       benchjson::kv("repair_p50_ms", repair_p50),
       benchjson::kv("repair_p90_ms", pctl(repair_lat, 0.90)),
       benchjson::kv("replan_p50_ms", replan_p50),
       benchjson::kv("replan_p90_ms", pctl(replan_lat, 0.90)),
       benchjson::kv("speedup", repair_p50 > 0.0 ? replan_p50 / repair_p50 : 0.0),
       benchjson::kv("lost", lost)},
      nullptr);
  std::fprintf(stderr,
               "sekitei_load: drift %llu pairs (%llu repaired in place); "
               "repair p50 %.2f ms vs replan p50 %.2f ms; %llu lost\n",
               static_cast<unsigned long long>(pairs),
               static_cast<unsigned long long>(repaired), repair_p50, replan_p50,
               static_cast<unsigned long long>(lost));
  return lost == 0 ? 0 : 1;
}

/// The same batch, straight into an in-process engine — the "what does the
/// wire cost" yardstick the acceptance bound compares against.
double run_direct(const Config& cfg, const std::string& domain_text,
                  const std::vector<std::string>& problem_texts) {
  service::PlanningEngine::Options opts;
  opts.workers = cfg.jobs;
  service::PlanningEngine engine(opts);

  std::vector<std::shared_ptr<const model::LoadedProblem>> problems;
  problems.reserve(problem_texts.size());
  for (const std::string& text : problem_texts) {
    problems.push_back(model::load_problem(domain_text, text));
  }

  auto submit_batch = [&](std::size_t count, std::size_t offset) {
    std::vector<service::PlanningEngine::Ticket> tickets;
    tickets.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      service::PlanRequest req;
      req.id = "direct-" + std::to_string(offset + i);
      req.problem = problems[(offset + i) % problems.size()];
      req.deadline_ms = cfg.deadline_ms;
      tickets.push_back(engine.submit(std::move(req)));
    }
    for (auto& t : tickets) (void)t.response.get();
  };

  submit_batch(cfg.warmup, 0);  // same cache-priming the daemon run got
  const std::size_t measured = cfg.requests - cfg.warmup;
  const std::int64_t begin = StopSource::now_epoch_ns();
  submit_batch(measured, cfg.warmup);
  const std::int64_t end = StopSource::now_epoch_ns();
  const double secs = static_cast<double>(end - begin) / 1e9;
  return secs > 0.0 ? static_cast<double>(measured) / secs : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  const char* domain_path = nullptr;
  std::vector<const char*> files;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      cfg.port = static_cast<std::uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--connections") == 0 && i + 1 < argc) {
      cfg.connections = std::max<std::size_t>(1, std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      cfg.requests = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--rate") == 0 && i + 1 < argc) {
      cfg.rate = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--warmup") == 0 && i + 1 < argc) {
      cfg.warmup = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      cfg.deadline_ms = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      cfg.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--retries") == 0 && i + 1 < argc) {
      cfg.retries = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--retry-base-ms") == 0 && i + 1 < argc) {
      cfg.retry_base_ms = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--compare-direct") == 0) {
      cfg.compare_direct = true;
    } else if (std::strcmp(argv[i], "--drift") == 0) {
      cfg.drift = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      cfg.jobs = std::strtoul(argv[++i], nullptr, 10);
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return 2;
    } else if (domain_path == nullptr) {
      domain_path = argv[i];
    } else {
      files.push_back(argv[i]);
    }
  }
  if (domain_path == nullptr || files.empty() || cfg.port == 0) {
    std::fprintf(stderr,
                 "usage: %s <domain.sk> <problem.sk>... --port N [--connections C]\n"
                 "          [--requests N] [--rate R] [--warmup K] [--deadline-ms D]\n"
                 "          [--seed S] [--retries N] [--retry-base-ms D]\n"
                 "          [--compare-direct] [--jobs N] [--drift]\n",
                 argv[0]);
    return 2;
  }
  if (cfg.requests <= cfg.warmup) {
    std::fprintf(stderr, "error: --requests must exceed --warmup\n");
    return 2;
  }

  try {
    const std::string domain_text = slurp(domain_path);
    std::vector<std::string> problem_texts;
    problem_texts.reserve(files.size());
    for (const char* path : files) problem_texts.push_back(slurp(path));

    if (cfg.drift) return run_drift(cfg, domain_text, problem_texts);

    // The full Poisson arrival schedule, drawn up front from one seeded
    // stream and dealt round-robin: deterministic offered load.
    SplitMix64 rng(cfg.seed);
    std::vector<std::vector<Planned>> per_conn(cfg.connections);
    double clock_ns = 0.0;
    for (std::size_t i = 0; i < cfg.requests; ++i) {
      const double u = rng.uniform(0.0, 1.0);
      clock_ns += -std::log(1.0 - u) / cfg.rate * 1e9;
      per_conn[i % cfg.connections].push_back(
          {i, i % problem_texts.size(), static_cast<std::int64_t>(clock_ns)});
    }

    Shared shared;
    auto& latency_hist = metrics::registry().histogram("netload.latency_ms");
    const std::int64_t start_ns = StopSource::now_epoch_ns();
    std::vector<std::thread> threads;
    threads.reserve(cfg.connections);
    for (std::size_t c = 0; c < cfg.connections; ++c) {
      threads.emplace_back([&, c] {
        run_connection(cfg, c, std::move(per_conn[c]), problem_texts, start_ns,
                       shared, latency_hist);
      });
    }
    for (auto& t : threads) t.join();

    const std::uint64_t measured = shared.measured.load();
    const std::int64_t begin = shared.window_begin.load();
    const std::int64_t end = shared.window_end.load();
    const double window_s =
        (begin != 0 && end > begin) ? static_cast<double>(end - begin) / 1e9 : 0.0;
    const double rps = window_s > 0.0 ? static_cast<double>(measured) / window_s : 0.0;
    const double p50 = latency_hist.quantile(0.50);
    const double p90 = latency_hist.quantile(0.90);
    const double p99 = latency_hist.quantile(0.99);

    benchjson::emit(
        "netload",
        {benchjson::kv("connections", static_cast<std::uint64_t>(cfg.connections)),
         benchjson::kv("requests", static_cast<std::uint64_t>(cfg.requests)),
         benchjson::kv("warmup", static_cast<std::uint64_t>(cfg.warmup)),
         benchjson::kv("rate", cfg.rate),
         benchjson::kv("rps", rps),
         benchjson::kv("p50_ms", p50),
         benchjson::kv("p90_ms", p90),
         benchjson::kv("p99_ms", p99),
         benchjson::kv("solved", shared.solved.load()),
         benchjson::kv("degraded", shared.degraded.load()),
         benchjson::kv("rejected", shared.rejected.load()),
         benchjson::kv("other", shared.other.load()),
         benchjson::kv("retried", shared.retried.load()),
         benchjson::kv("lost", shared.lost.load())},
        nullptr);

    std::fprintf(stderr,
                 "sekitei_load: %llu answered (%llu measured) at %.1f req/s; "
                 "p50 %.2f ms, p90 %.2f ms, p99 %.2f ms; %llu lost\n",
                 static_cast<unsigned long long>(shared.answered.load()),
                 static_cast<unsigned long long>(measured), rps, p50, p90, p99,
                 static_cast<unsigned long long>(shared.lost.load()));

    if (cfg.compare_direct) {
      const double direct_rps = run_direct(cfg, domain_text, problem_texts);
      benchjson::emit("netload_direct",
                      {benchjson::kv("jobs", static_cast<std::uint64_t>(cfg.jobs)),
                       benchjson::kv("rps", direct_rps)},
                      nullptr);
      const double ratio = direct_rps > 0.0 ? rps / direct_rps : 0.0;
      std::fprintf(stderr, "sekitei_load: wire/direct rps ratio %.3f (%.1f / %.1f)\n",
                   ratio, rps, direct_rps);
    }

    return shared.lost.load() == 0 ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
