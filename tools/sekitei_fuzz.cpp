// Differential fuzzing driver: seeded random instances through the oracle
// battery, one NDJSON record per run to stdout, minimized .sk repros on
// disagreement.
//
//   $ ./sekitei_fuzz --seed 1 --runs 200 [--time-budget-ms T]
//                    [--max-components K] [--max-nodes N] [--feasible-bias P]
//                    [--oracles <csv|all>] [--out-dir DIR] [--no-minimize]
//                    [--max-rg-expansions N] [--print <seed>]
//   $ ./sekitei_fuzz --replay <stem>            # re-check a saved repro pair
//
// --seed            base seed; run i fuzzes instance generate(seed + i)
// --runs            instances to try (default 100)
// --time-budget-ms  stop starting new runs after this much wall time (the
//                   per-run search stays deterministic: budgets, not clocks)
// --max-components  transformer-stage cap of the generator (default 3)
// --max-nodes       topology-size cap of the generator (default 8)
// --feasible-bias   probability of generously sized capacities (default .65)
// --oracles         comma list of greedy,preflight,validator,permutation,
//                   widening,refinement,service,drift,symmetry,cp — or
//                   "all" (default)
// --out-dir         where <stem>.domain.sk/.problem.sk repros land
//                   (default fuzz-repros)
// --no-minimize     write the unshrunk failing instance instead
// --print           render one instance's .sk texts to stdout and exit
// --replay          load <stem>.domain.sk + <stem>.problem.sk and run the
//                   differential oracle subset on them
//
// Fault injection: SEKITEI_FAULTS=fuzz.misreport:1:fail plants a cost
// misreport after every base solve; the battery must catch it and the
// minimizer must shrink the repro (this is CI's harness self-test).
//
// Exit codes: 0 = all runs clean, 1 = at least one oracle disagreement,
// 2 = usage or environment error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "support/error.hpp"
#include "support/fault.hpp"
#include "support/json.hpp"
#include "testing/fuzzer.hpp"
#include "testing/minimize.hpp"

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) sekitei::raise("cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void emit_line(const std::string& line) {
  std::fwrite(line.data(), 1, line.size(), stdout);
  std::fputc('\n', stdout);
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed S] [--runs N] [--time-budget-ms T]\n"
               "          [--max-components K] [--max-nodes N] [--feasible-bias P]\n"
               "          [--oracles <csv|all>] [--out-dir DIR] [--no-minimize]\n"
               "          [--max-rg-expansions N] [--print <seed>] [--replay <stem>]\n",
               argv0);
  return 2;
}

int replay(const std::string& stem, const sekitei::testing::OracleConfig& cfg) {
  using namespace sekitei::testing;
  const OracleReport report =
      replay_text(slurp(stem + ".domain.sk"), slurp(stem + ".problem.sk"), cfg);
  std::string line = "{\"fuzz\":\"replay\",\"stem\":";
  sekitei::json::append_escaped(line, stem);
  line += ",\"verdict\":";
  sekitei::json::append_escaped(line, verdict_name(report.optimal.verdict));
  line += ",\"greedy\":";
  sekitei::json::append_escaped(line, verdict_name(report.greedy.verdict));
  line += ",\"preflight_infeasible\":";
  line += report.preflight_infeasible ? "true" : "false";
  line += ",\"disagreements\":[";
  for (std::size_t i = 0; i < report.disagreements.size(); ++i) {
    if (i != 0) line += ',';
    line += "{\"oracle\":";
    sekitei::json::append_escaped(line, report.disagreements[i].oracle);
    line += ",\"detail\":";
    sekitei::json::append_escaped(line, report.disagreements[i].detail);
    line += '}';
  }
  line += "]}";
  emit_line(line);
  return report.failed() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sekitei;
  using namespace sekitei::testing;

  {
    std::string fault_error;
    if (!fault::install_from_env("SEKITEI_FAULTS", &fault_error)) {
      std::fprintf(stderr, "error: SEKITEI_FAULTS: %s\n", fault_error.c_str());
      return 2;
    }
  }

  FuzzParams params;
  bool have_print = false;
  std::uint64_t print_seed = 0;
  std::string replay_stem;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      params.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
      params.runs = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--time-budget-ms") == 0 && i + 1 < argc) {
      params.time_budget_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--max-components") == 0 && i + 1 < argc) {
      params.workload.max_stages =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--max-nodes") == 0 && i + 1 < argc) {
      params.workload.max_nodes =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--feasible-bias") == 0 && i + 1 < argc) {
      params.workload.feasible_bias = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--oracles") == 0 && i + 1 < argc) {
      std::string error;
      if (!parse_oracle_set(argv[++i], params.oracles, &error)) {
        std::fprintf(stderr, "error: --oracles: %s\n", error.c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--out-dir") == 0 && i + 1 < argc) {
      params.out_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--no-minimize") == 0) {
      params.minimize_repros = false;
    } else if (std::strcmp(argv[i], "--max-rg-expansions") == 0 && i + 1 < argc) {
      params.oracles.max_rg_expansions = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--print") == 0 && i + 1 < argc) {
      have_print = true;
      print_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--replay") == 0 && i + 1 < argc) {
      replay_stem = argv[++i];
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return usage(argv[0]);
    }
  }

  try {
    if (have_print) {
      const GenInstance inst = generate(print_seed, params.workload);
      std::fputs(inst.domain_text().c_str(), stdout);
      std::fputs("// ---- problem ----\n", stdout);
      std::fputs(inst.problem_text().c_str(), stdout);
      return 0;
    }
    if (!replay_stem.empty()) return replay(replay_stem, params.oracles);

    const FuzzStats stats = fuzz(params, emit_line);
    std::fflush(stdout);
    std::fprintf(stderr,
                 "sekitei_fuzz: %zu runs (%zu solved, %zu infeasible, %zu unknown), "
                 "%zu oracle checks, %zu failing runs, %zu repro(s)%s\n",
                 stats.runs, stats.solved, stats.infeasible, stats.unknown,
                 stats.oracle_checks, stats.failing_runs, stats.repro_paths.size(),
                 stats.budget_exhausted ? " [time budget exhausted]" : "");
    return stats.clean() ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
