// Domain linter and pre-flight infeasibility analyzer, as a command-line
// tool.  Loads a domain and one or more problem files, compiles each pair,
// and runs the full analysis battery (analysis/analyzer.hpp) over the
// compiled instance.
//
//   $ ./sekitei_lint <domain.sk> <problem.sk> [<problem2.sk> ...]
//                    [--format text|ndjson|sarif] [--Werror]
//                    [--suppress CODE[,CODE...]] [--max-sweeps N]
//                    [--no-reachability] [--no-intervals] [--no-symmetry]
//                    [--no-hygiene]
//
// Exit codes:
//   0  no error-severity findings in any instance
//   1  at least one error-severity finding (SK0xx, or any warning under
//      --Werror) — notes never affect the exit code
//   2  usage error, unreadable file, or a load/compile failure
//
// --suppress accepts either numeric ids ("SK104") or names
// ("unused-interface").  --format ndjson prints one JSON object per finding
// per line; with several problem files each object gains a "file" field.
// --format sarif emits one SARIF 2.1.0 document covering every instance,
// with rule metadata for all SK codes (analysis/sarif.hpp).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/sarif.hpp"
#include "model/compile.hpp"
#include "model/textio.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

namespace {

bool slurp(const char* path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream os;
  os << in.rdbuf();
  *out = os.str();
  return true;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <domain.sk> <problem.sk> [<problem2.sk> ...]\n"
               "          [--format text|ndjson|sarif] [--Werror]\n"
               "          [--suppress CODE[,CODE...]] [--max-sweeps N]\n"
               "          [--no-reachability] [--no-intervals] [--no-symmetry]\n"
               "          [--no-hygiene]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sekitei;
  std::vector<const char*> problem_paths;
  const char* domain_path = nullptr;
  enum class Format { Text, Ndjson, Sarif };
  Format format = Format::Text;
  analysis::AnalysisOptions options;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--format") == 0 && i + 1 < argc) {
      const char* fmt = argv[++i];
      if (std::strcmp(fmt, "ndjson") == 0) {
        format = Format::Ndjson;
      } else if (std::strcmp(fmt, "text") == 0) {
        format = Format::Text;
      } else if (std::strcmp(fmt, "sarif") == 0) {
        format = Format::Sarif;
      } else {
        std::fprintf(stderr, "error: unknown format '%s' (text|ndjson|sarif)\n", fmt);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--Werror") == 0) {
      options.werror = true;
    } else if (std::strcmp(argv[i], "--suppress") == 0 && i + 1 < argc) {
      std::string list = argv[++i];
      std::size_t pos = 0;
      while (pos != std::string::npos) {
        const std::size_t comma = list.find(',', pos);
        const std::string item = list.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        analysis::Code code;
        if (!analysis::parse_code(item, &code)) {
          std::fprintf(stderr, "error: unknown diagnostic code '%s'\n", item.c_str());
          return 2;
        }
        options.suppress.push_back(code);
        pos = comma == std::string::npos ? comma : comma + 1;
      }
    } else if (std::strcmp(argv[i], "--max-sweeps") == 0 && i + 1 < argc) {
      options.max_sweeps = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
      if (options.max_sweeps == 0) {
        std::fprintf(stderr, "error: --max-sweeps must be positive\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--no-reachability") == 0) {
      options.reachability = false;
    } else if (std::strcmp(argv[i], "--no-intervals") == 0) {
      options.intervals = false;
    } else if (std::strcmp(argv[i], "--no-symmetry") == 0) {
      options.symmetry = false;
    } else if (std::strcmp(argv[i], "--no-hygiene") == 0) {
      options.hygiene = false;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", argv[i]);
      return usage(argv[0]);
    } else if (domain_path == nullptr) {
      domain_path = argv[i];
    } else {
      problem_paths.push_back(argv[i]);
    }
  }
  if (domain_path == nullptr || problem_paths.empty()) return usage(argv[0]);

  std::string domain_text;
  if (!slurp(domain_path, &domain_text)) {
    std::fprintf(stderr, "error: cannot open %s\n", domain_path);
    return 2;
  }

  const bool many = problem_paths.size() > 1;
  int exit_code = 0;
  // --format sarif: reports are collected across instances and rendered as
  // one document after the loop.
  std::vector<std::pair<std::string, analysis::AnalysisReport>> sarif_files;
  for (const char* path : problem_paths) {
    std::string problem_text;
    if (!slurp(path, &problem_text)) {
      std::fprintf(stderr, "error: cannot open %s\n", path);
      return 2;
    }
    try {
      const auto lp = model::load_problem(domain_text, problem_text);
      const auto cp = model::compile(lp->problem, lp->scenario);
      analysis::AnalysisReport report = analysis::analyze(cp, options);
      if (report.exit_code() > exit_code) exit_code = report.exit_code();
      if (format == Format::Sarif) {
        sarif_files.emplace_back(path, std::move(report));
        continue;
      }
      if (format == Format::Ndjson) {
        for (const analysis::Diagnostic& d : report.diagnostics) {
          if (many) {
            std::string line = d.json();
            std::string field = ",\"file\":";
            json::append_escaped(field, path);
            line.insert(line.size() - 1, field);
            std::fputs(line.c_str(), stdout);
          } else {
            std::fputs(d.json().c_str(), stdout);
          }
          std::fputc('\n', stdout);
        }
      } else {
        if (many) std::printf("== %s ==\n", path);
        std::fputs(report.render_text().c_str(), stdout);
      }
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s: %s\n", path, e.what());
      return 2;
    }
  }
  if (format == Format::Sarif) {
    std::fputs(analysis::render_sarif(sarif_files).c_str(), stdout);
  }
  return exit_code;
}
